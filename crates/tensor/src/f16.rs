//! IEEE 754 binary16 ("half") floating point, implemented from scratch.
//!
//! SALIENT stores node features in host memory as half precision to halve the
//! bytes moved during slicing and CPU→GPU transfer (§3, conventional
//! optimization (iii)). GPU compute still happens in `f32`, so the only
//! operations needed are conversion to/from `f32` plus ordering/formatting.
//!
//! Conversions between whole rows go through the bulk kernels
//! [`widen_into`] / [`narrow_into`], which use the x86 F16C unit
//! (`vcvtph2ps` / `vcvtps2ph`, 8 lanes per instruction) when the CPU has it
//! and fall back to the portable scalar implementation otherwise. Hot-path
//! crates are forbidden (by the `half-conversion` salient-lint rule) from
//! writing scalar per-element conversion loops, so the vectorized path is the
//! only one the pipeline exercises on row-shaped data.
//!
//! One hardware caveat, pinned by tests: the F16C unit handles NaN payloads
//! differently from the scalar code (`vcvtps2ph` keeps the top ten payload
//! bits where [`F16::from_f32`] canonicalizes; `vcvtph2ps` quietens
//! signaling NaNs where [`F16::to_f32`] shifts the payload verbatim). Both
//! results are always NaN, and the pipeline never stores NaN features, so the
//! bulk kernels only promise "NaN in → NaN out", not a specific payload;
//! for every non-NaN input they are bit-identical to the scalar path.

use std::cmp::Ordering;
use std::fmt;

/// A 16-bit IEEE 754 binary16 floating point number.
///
/// Layout: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
/// Conversion from `f32` uses round-to-nearest-even, matching hardware
/// `F32 -> F16` conversion semantics.
///
/// `repr(transparent)` over the raw `u16` is a guarantee the SIMD conversion
/// kernels rely on: a `&[F16]` may be reinterpreted as a `*const u16` for
/// `vcvtph2ps` loads.
///
/// # Equality
///
/// `PartialEq` follows IEEE 754 *semantic* equality, like `f32`:
/// `+0.0 == -0.0` and `NaN != NaN` (so `F16` is deliberately **not** `Eq` or
/// `Hash`). The earlier derived bitwise implementation got both cases wrong.
/// Code that needs a total order over the full value set (sorting buffers
/// that may contain NaN) should use [`F16::total_cmp`]; code that needs
/// bit-level identity should compare [`F16::to_bits`].
///
/// # Examples
///
/// ```
/// use salient_tensor::F16;
///
/// let h = F16::from_f32(1.5);
/// assert_eq!(h.to_f32(), 1.5);
/// assert_eq!(F16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
/// assert_eq!(F16::from_f32(0.0), F16::from_f32(-0.0));
/// assert_ne!(F16::from_f32(f32::NAN), F16::from_f32(f32::NAN));
/// ```
#[derive(Clone, Copy, Default)]
#[repr(transparent)]
pub struct F16(u16);

const EXP_MASK: u16 = 0x7C00;
const MAN_MASK: u16 = 0x03FF;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// The largest finite value, 65504.
    pub const MAX: F16 = F16(0x7BFF);
    /// The smallest positive normal value, 2^-14.
    pub const MIN_POSITIVE: F16 = F16(0x0400);

    /// Creates an `F16` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Self {
        F16(bits)
    }

    /// Returns the raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts an `f32` to `F16` with round-to-nearest-even.
    ///
    /// Values whose magnitude exceeds [`F16::MAX`] become infinity; values
    /// below the subnormal range flush to (signed) zero; NaN stays NaN.
    pub fn from_f32(value: f32) -> Self {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve a quiet-NaN payload bit so NaN stays NaN.
            let nan_payload = if man != 0 { 0x0200 } else { 0 };
            return F16(sign | EXP_MASK | nan_payload);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity.
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal range. 13 mantissa bits must be rounded away.
            let half_exp = ((unbiased + 15) as u16) << 10;
            let half_man = (man >> 13) as u16;
            let round_bits = man & 0x1FFF;
            let mut h = sign | half_exp | half_man;
            // Round to nearest even.
            if round_bits > 0x1000 || (round_bits == 0x1000 && (half_man & 1) == 1) {
                h = h.wrapping_add(1); // may carry into exponent: correct (rounds up to next binade or inf)
            }
            return F16(h);
        }
        if unbiased >= -25 {
            // Subnormal half. Shift the implicit leading 1 into the mantissa.
            // The unit in the last place of a subnormal half is 2^-24, so the
            // 24-bit significand (1 implicit + 23 explicit bits, worth
            // 2^(unbiased-23) per bit) must shift right by -(unbiased+1).
            let full_man = man | 0x0080_0000;
            let s = (-unbiased - 1) as u32; // 14..=24
            let half_man = (full_man >> s) as u16;
            let round_mask = (1u32 << s) - 1;
            let round_bits = full_man & round_mask;
            let halfway = 1u32 << (s - 1);
            let mut h = sign | half_man;
            if round_bits > halfway || (round_bits == halfway && (half_man & 1) == 1) {
                h = h.wrapping_add(1);
            }
            return F16(h);
        }
        // Underflow to signed zero.
        F16(sign)
    }

    /// Converts this half back to `f32` exactly (every `F16` value is
    /// representable in `f32`).
    pub fn to_f32(self) -> f32 {
        let sign = ((self.0 & 0x8000) as u32) << 16;
        let exp = ((self.0 & EXP_MASK) >> 10) as u32;
        let man = (self.0 & MAN_MASK) as u32;
        let bits = match (exp, man) {
            (0, 0) => sign,
            (0, m) => {
                // Subnormal: normalize.
                let mut e = -14i32;
                let mut m = m;
                while m & 0x0400 == 0 {
                    m <<= 1;
                    e -= 1;
                }
                m &= 0x03FF;
                sign | (((e + 127) as u32) << 23) | (m << 13)
            }
            (0x1F, 0) => sign | 0x7F80_0000,
            (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
            (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
        };
        f32::from_bits(bits)
    }

    /// Whether this value is NaN.
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) != 0
    }

    /// Whether this value is positive or negative infinity.
    pub fn is_infinite(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & MAN_MASK) == 0
    }

    /// Whether this value is finite (neither infinite nor NaN).
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// IEEE 754 `totalOrder` over binary16, mirroring [`f32::total_cmp`]:
    /// `-NaN < -Inf < … < -0.0 < +0.0 < … < +Inf < +NaN`, with NaNs further
    /// ordered by payload. This is the tool for sorting or deduplicating
    /// buffers that may contain NaN, where semantic `PartialEq`/`PartialOrd`
    /// (which treat NaN as unordered) would be unusable.
    pub fn total_cmp(&self, other: &Self) -> Ordering {
        // Standard sign-magnitude → two's-complement trick: flipping all
        // bits of negative values (and only the sign bit of positives) maps
        // the IEEE total order onto the integer order.
        let mut a = self.0 as i16;
        let mut b = other.0 as i16;
        a ^= (((a >> 15) as u16) >> 1) as i16;
        b ^= (((b >> 15) as u16) >> 1) as i16;
        a.cmp(&b)
    }
}

impl PartialEq for F16 {
    /// IEEE semantic equality: `+0.0 == -0.0`, `NaN != NaN` (matches `f32`).
    fn eq(&self, other: &Self) -> bool {
        self.to_f32() == other.to_f32()
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

/// Element type of a feature buffer: the knob behind `SALIENT_DTYPE`.
///
/// The pipeline stores and ships node features either as packed binary16
/// (`Half`, the paper's configuration — half the slice/transfer bytes) or as
/// plain `f32` (`Full`, the exact baseline the mixed-precision bench compares
/// against). Compute is always fp32; the dtype only governs storage and the
/// bytes a transfer moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dtype {
    /// IEEE binary16 storage ([`F16`]), widened to `f32` at the consumer.
    F16,
    /// Plain `f32` storage; no conversion anywhere.
    F32,
}

impl Dtype {
    /// Bytes per element.
    pub const fn size_of(self) -> usize {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }

    /// Parses a dtype name: `f16`/`half` or `f32`/`float` (case-insensitive).
    pub fn parse(s: &str) -> Option<Dtype> {
        match s.trim().to_ascii_lowercase().as_str() {
            "f16" | "half" | "float16" => Some(Dtype::F16),
            "f32" | "full" | "float" | "float32" => Some(Dtype::F32),
            _ => None,
        }
    }

    /// Reads the `SALIENT_DTYPE` environment variable; unset or unrecognized
    /// values fall back to [`Dtype::F16`] (the paper's configuration).
    pub fn from_env() -> Dtype {
        match std::env::var("SALIENT_DTYPE") {
            Ok(v) => Dtype::parse(&v).unwrap_or(Dtype::F16),
            Err(_) => Dtype::F16,
        }
    }
}

impl fmt::Display for Dtype {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dtype::F16 => write!(f, "f16"),
            Dtype::F32 => write!(f, "f32"),
        }
    }
}

/// Widens halves to `f32`, writing into `out` (the "GPU-side upcast" in the
/// SALIENT transfer path: features are sliced and shipped as binary16 and
/// widened once at the consumer).
///
/// Uses F16C `vcvtph2ps` (8 lanes/instruction) when the CPU supports it and
/// the scalar [`F16::to_f32`] otherwise — widening is exact, so the two
/// paths agree bit-for-bit on every non-NaN input pattern (hardware quietens
/// signaling-NaN payloads; both paths keep NaN as NaN).
///
/// # Panics
///
/// Panics if `out.len() != src.len()`.
pub fn widen_into(src: &[F16], out: &mut [f32]) {
    assert_eq!(src.len(), out.len(), "widen length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::f16c_available() {
        // SAFETY: the F16C probe above passed, and the slices have equal
        // length by the assert.
        unsafe { simd::widen_f16c(src, out) };
        return;
    }
    for (o, v) in out.iter_mut().zip(src.iter()) {
        *o = v.to_f32();
    }
}

/// Narrows `f32` values to halves with round-to-nearest-even, writing into
/// `out`. The inverse of [`widen_into`]; used when quantizing a feature
/// matrix or staging fp32 data into a half-precision slab.
///
/// Uses F16C `vcvtps2ph` when available, scalar [`F16::from_f32`] otherwise.
/// The two paths agree bit-for-bit on all non-NaN inputs; for NaN both
/// produce NaN but may differ in payload (hardware keeps the top ten f32
/// payload bits, the scalar path canonicalizes).
///
/// # Panics
///
/// Panics if `out.len() != src.len()`.
pub fn narrow_into(src: &[f32], out: &mut [F16]) {
    assert_eq!(src.len(), out.len(), "narrow length mismatch");
    #[cfg(target_arch = "x86_64")]
    if simd::f16c_available() {
        // SAFETY: the F16C probe above passed, and the slices have equal
        // length by the assert.
        unsafe { simd::narrow_f16c(src, out) };
        return;
    }
    for (o, v) in out.iter_mut().zip(src.iter()) {
        *o = F16::from_f32(*v);
    }
}

/// Converts a slice of `f32` into a freshly allocated vector of halves
/// (bulk-vectorized; see [`narrow_into`]).
pub fn quantize(values: &[f32]) -> Vec<F16> {
    let mut out = vec![F16::ZERO; values.len()];
    narrow_into(values, &mut out);
    out
}

/// Converts halves back to `f32`, writing into `out`.
///
/// Alias of [`widen_into`] kept for call-site readability (the
/// quantize/dequantize pairing).
///
/// # Panics
///
/// Panics if `out.len() != values.len()`.
pub fn dequantize_into(values: &[F16], out: &mut [f32]) {
    widen_into(values, out);
}

/// F16C-accelerated conversion kernels (x86-64 only, runtime-detected).
#[cfg(target_arch = "x86_64")]
mod simd {
    use super::F16;
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// Whether the CPU supports F16C (`vcvtph2ps`/`vcvtps2ph`).
    pub fn f16c_available() -> bool {
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| is_x86_feature_detected!("f16c"))
    }

    /// Bulk f16 → f32 widening, 8 lanes per `vcvtph2ps`.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`f16c_available`] and that
    /// `src.len() == out.len()`.
    #[target_feature(enable = "f16c")]
    pub unsafe fn widen_f16c(src: &[F16], out: &mut [f32]) {
        let n = src.len();
        // F16 is repr(transparent) over u16, so the slice reinterprets.
        let sp = src.as_ptr() as *const u16;
        let op = out.as_mut_ptr();
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY (covered by the fn contract): i + 8 <= n, so both the
            // 128-bit load and the 256-bit store stay inside their slices
            // (unaligned ops).
            let h = _mm_loadu_si128(sp.add(i) as *const __m128i);
            _mm256_storeu_ps(op.add(i), _mm256_cvtph_ps(h));
            i += 8;
        }
        while i < n {
            // Scalar tail (< 8 elements); bit-identical to the vector body.
            // SAFETY (covered by the fn contract): i < n on both slices.
            *op.add(i) = F16::from_bits(*sp.add(i)).to_f32();
            i += 1;
        }
    }

    /// Bulk f32 → f16 narrowing with round-to-nearest-even, 8 lanes per
    /// `vcvtps2ph`.
    ///
    /// # Safety
    ///
    /// Caller must have verified [`f16c_available`] and that
    /// `src.len() == out.len()`.
    #[target_feature(enable = "f16c")]
    pub unsafe fn narrow_f16c(src: &[f32], out: &mut [F16]) {
        // vcvtps2ph imm8: bits 1:0 = rounding control (0b00 = round to
        // nearest even, the same rounding the scalar path implements),
        // bit 2 clear = use the immediate rather than MXCSR.
        const RN: i32 = _MM_FROUND_TO_NEAREST_INT;
        let n = src.len();
        let sp = src.as_ptr();
        let op = out.as_mut_ptr() as *mut u16;
        let mut i = 0;
        while i + 8 <= n {
            // SAFETY (covered by the fn contract): i + 8 <= n, so the 256-bit
            // load and the 128-bit store stay inside their slices (unaligned).
            let v = _mm256_loadu_ps(sp.add(i));
            _mm_storeu_si128(op.add(i) as *mut __m128i, _mm256_cvtps_ph::<RN>(v));
            i += 8;
        }
        while i < n {
            // Scalar tail (< 8 elements); bit-identical to the vector body
            // for all non-NaN inputs (NaN payloads may differ, see module docs).
            // SAFETY (covered by the fn contract): i < n on both slices.
            *op.add(i) = F16::from_f32(*sp.add(i)).to_bits();
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    #[test]
    fn exact_small_integers_round_trip() {
        for i in -2048..=2048 {
            let f = i as f32;
            assert_eq!(F16::from_f32(f).to_f32(), f, "value {f}");
        }
    }

    #[test]
    fn powers_of_two_round_trip() {
        for e in -14..=15 {
            let f = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(f).to_f32(), f);
            assert_eq!(F16::from_f32(-f).to_f32(), -f);
        }
    }

    #[test]
    fn constants() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
        assert_eq!(F16::MIN_POSITIVE.to_f32(), (2.0f32).powi(-14));
    }

    #[test]
    fn overflow_goes_to_infinity() {
        assert_eq!(F16::from_f32(1e6).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(-1e6).to_f32(), f32::NEG_INFINITY);
        // Values just above MAX round to infinity; just below stay finite.
        assert_eq!(F16::from_f32(65520.0).to_f32(), f32::INFINITY);
        assert_eq!(F16::from_f32(65472.0).to_f32(), 65472.0);
    }

    #[test]
    fn nan_is_preserved() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn subnormals() {
        let tiny = (2.0f32).powi(-24); // smallest positive subnormal half
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        let sub = 3.0 * (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
        // Below half the smallest subnormal: flush to zero.
        assert_eq!(F16::from_f32((2.0f32).powi(-26)).to_f32(), 0.0);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1+2^-10; ties go to
        // even mantissa, i.e. down to 1.0.
        let halfway = 1.0 + (2.0f32).powi(-11);
        assert_eq!(F16::from_f32(halfway).to_f32(), 1.0);
        // Slightly above halfway rounds up.
        let above = 1.0 + (2.0f32).powi(-11) + (2.0f32).powi(-16);
        assert_eq!(F16::from_f32(above).to_f32(), 1.0 + (2.0f32).powi(-10));
    }

    #[test]
    fn quantize_dequantize_slices() {
        let xs = [0.0f32, 1.0, -2.5, 100.25, 0.099975586];
        let q = quantize(&xs);
        let mut out = vec![0.0f32; xs.len()];
        dequantize_into(&q, &mut out);
        for (a, b) in xs.iter().zip(out.iter()) {
            assert!((a - b).abs() <= a.abs() * 1e-3 + 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn quantization_relative_error_bound() {
        // Round-to-nearest: relative error at most 2^-11 for normal values.
        let mut x = 1.0f32;
        while x < 60000.0 {
            let h = F16::from_f32(x).to_f32();
            assert!((h - x).abs() <= x * (2.0f32).powi(-11) + f32::EPSILON);
            x *= 1.37;
        }
    }

    // ---- semantic equality / total order (satellite: Eq fix) ----

    #[test]
    fn signed_zeros_compare_equal() {
        let pz = F16::from_f32(0.0);
        let nz = F16::from_f32(-0.0);
        assert_ne!(pz.to_bits(), nz.to_bits(), "distinct representations");
        assert_eq!(pz, nz, "semantic equality identifies +0.0 and -0.0");
    }

    #[test]
    fn nan_is_not_equal_to_itself() {
        let nan = F16::from_f32(f32::NAN);
        assert_ne!(nan, nan);
        assert_eq!(nan.partial_cmp(&nan), None);
    }

    #[test]
    fn total_cmp_orders_the_full_value_set() {
        use std::cmp::Ordering;
        // -NaN < -Inf < -1 < -0 < +0 < 1 < +Inf < +NaN
        let seq = [
            F16::from_bits(0xFE00), // -NaN
            F16::NEG_INFINITY,
            F16::from_f32(-1.0),
            F16::from_bits(0x8000), // -0.0
            F16::ZERO,
            F16::ONE,
            F16::INFINITY,
            F16::from_bits(0x7E00), // +NaN
        ];
        for w in seq.windows(2) {
            assert_eq!(w[0].total_cmp(&w[1]), Ordering::Less, "{:?} < {:?}", w[0], w[1]);
        }
        for v in seq {
            assert_eq!(v.total_cmp(&v), Ordering::Equal);
        }
    }

    #[test]
    fn total_cmp_matches_f32_total_cmp_on_samples() {
        let mut rng = StdRng::seed_from_u64(0xF16);
        for _ in 0..20_000 {
            let a = F16::from_bits(rng.random::<u32>() as u16);
            let b = F16::from_bits(rng.random::<u32>() as u16);
            // f32::total_cmp agrees except that distinct f16 NaN payloads all
            // widen to distinct f32 payloads in the same order, so the orders
            // coincide on every pair.
            assert_eq!(
                a.total_cmp(&b),
                a.to_f32().total_cmp(&b.to_f32()),
                "a={:#06x} b={:#06x}",
                a.to_bits(),
                b.to_bits()
            );
        }
    }

    // ---- exhaustive bit-pattern sweeps (satellite: property tests) ----

    #[test]
    fn all_bit_patterns_round_trip_exactly() {
        // Every non-NaN half widens to f32 and narrows back to the identical
        // bit pattern (widening is exact; the value is its own nearest half).
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan(), "NaN pattern {bits:#06x} must stay NaN");
            } else {
                assert_eq!(back.to_bits(), bits, "pattern {bits:#06x}");
            }
        }
    }

    #[test]
    fn bulk_widen_matches_scalar_on_all_patterns() {
        // Runs both the F16C path (when the CPU has it) and the scalar
        // fallback through the public entry point; they must agree bitwise on
        // every non-NaN input. For NaN inputs hardware `vcvtph2ps` quietens
        // signaling NaNs (sets the f32 quiet bit) where the scalar path
        // shifts the payload verbatim, so there the contract is NaN → NaN.
        let src: Vec<F16> = (0..=u16::MAX).map(F16::from_bits).collect();
        let mut bulk = vec![0.0f32; src.len()];
        widen_into(&src, &mut bulk);
        for (i, (&h, &w)) in src.iter().zip(bulk.iter()).enumerate() {
            if h.is_nan() {
                assert!(w.is_nan(), "pattern {i:#06x}: NaN must widen to NaN");
            } else {
                assert_eq!(
                    w.to_bits(),
                    h.to_f32().to_bits(),
                    "pattern {i:#06x}: bulk widen diverged from scalar"
                );
            }
        }
    }

    #[test]
    fn bulk_narrow_matches_scalar_on_f16_boundary_grid() {
        // For every half h and small ULP offsets around its f32 image, the
        // bulk narrow must agree with scalar RTNE bit-for-bit (non-NaN).
        let mut src = Vec::new();
        for bits in (0..=u16::MAX).step_by(7) {
            let h = F16::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            let f = h.to_f32();
            src.push(f);
            src.push(f32::from_bits(f.to_bits().wrapping_add(1)));
            src.push(f32::from_bits(f.to_bits().wrapping_sub(1)));
        }
        let mut bulk = vec![F16::ZERO; src.len()];
        narrow_into(&src, &mut bulk);
        for (&f, &h) in src.iter().zip(bulk.iter()) {
            let scalar = F16::from_f32(f);
            if scalar.is_nan() {
                assert!(h.is_nan(), "input {:#010x}: NaN must stay NaN", f.to_bits());
            } else {
                assert_eq!(
                    h.to_bits(),
                    scalar.to_bits(),
                    "input {:#010x}: bulk narrow diverged from scalar RTNE",
                    f.to_bits()
                );
            }
        }
    }

    #[test]
    fn bulk_narrow_matches_scalar_on_random_f32(){
        // Random f32 bit patterns: every class (normals, subnormals, huge,
        // tiny, inf, NaN) appears; hardware vcvtps2ph and the scalar RTNE
        // implementation must agree on all non-NaN inputs.
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        let src: Vec<f32> = (0..100_000)
            .map(|_| f32::from_bits(rng.random::<u32>()))
            .collect();
        let mut bulk = vec![F16::ZERO; src.len()];
        narrow_into(&src, &mut bulk);
        for (&f, &h) in src.iter().zip(bulk.iter()) {
            let scalar = F16::from_f32(f);
            if f.is_nan() {
                assert!(h.is_nan());
            } else {
                assert_eq!(h.to_bits(), scalar.to_bits(), "input {:#010x}", f.to_bits());
            }
        }
    }

    #[test]
    fn property_rtne_picks_the_nearest_half() {
        // For random finite f32 inputs inside the half range, the rounded
        // result must be one of the two bracketing halves, and strictly the
        // nearer one when the input is not exactly halfway.
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..50_000 {
            let x = (rng.random::<f32>() - 0.5) * 130_000.0;
            let h = F16::from_f32(x);
            if !h.is_finite() {
                // Overflow: |x| must be beyond the midpoint between MAX and
                // the next (unrepresentable) binade value 65536.
                assert!(x.abs() >= 65520.0, "{x} overflowed too early");
                continue;
            }
            let up = F16::from_bits(h.to_bits().wrapping_add(1));
            let down = F16::from_bits(h.to_bits().wrapping_sub(1));
            let err = (h.to_f32() - x).abs();
            for n in [up, down] {
                if n.is_finite() && (n > h) != (n < h) {
                    let other = (n.to_f32() - x).abs();
                    assert!(
                        err <= other,
                        "{x}: rounded to {h:?} but {n:?} is nearer (err {err} vs {other})"
                    );
                }
            }
        }
    }

    #[test]
    fn property_subnormal_ladder_is_exact() {
        // Every multiple of 2^-24 up to the normal threshold is exactly
        // representable as a subnormal half and must round-trip.
        let ulp = (2.0f32).powi(-24);
        for k in 0..1024 {
            let x = k as f32 * ulp;
            assert_eq!(F16::from_f32(x).to_f32(), x, "subnormal {k} * 2^-24");
            assert_eq!(F16::from_f32(-x).to_f32(), -x, "subnormal -{k} * 2^-24");
        }
    }

    #[test]
    fn property_widen_narrow_random_roundtrip_error() {
        // Quantize → dequantize of uniform features stays within the RTNE
        // relative-error bound 2^-11 (the bound DESIGN.md documents).
        let mut rng = StdRng::seed_from_u64(7);
        let src: Vec<f32> = (0..65_536).map(|_| (rng.random::<f32>() - 0.5) * 8.0).collect();
        let q = quantize(&src);
        let mut back = vec![0.0f32; src.len()];
        dequantize_into(&q, &mut back);
        for (&x, &y) in src.iter().zip(back.iter()) {
            assert!(
                (x - y).abs() <= x.abs() * (2.0f32).powi(-11) + (2.0f32).powi(-24),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn dtype_parse_and_sizes() {
        assert_eq!(Dtype::parse("f16"), Some(Dtype::F16));
        assert_eq!(Dtype::parse("HALF"), Some(Dtype::F16));
        assert_eq!(Dtype::parse("f32"), Some(Dtype::F32));
        assert_eq!(Dtype::parse(" Float32 "), Some(Dtype::F32));
        assert_eq!(Dtype::parse("bf16"), None);
        assert_eq!(Dtype::F16.size_of(), 2);
        assert_eq!(Dtype::F32.size_of(), 4);
        assert_eq!(Dtype::F16.to_string(), "f16");
        assert_eq!(Dtype::F32.to_string(), "f32");
    }
}
