//! Differentiable gather/scatter operations used by message-passing layers.
//!
//! A bipartite message-flow-graph layer is an edge list of `(src, dst)` local
//! id pairs; aggregation ops here implement the `AGG` of Eq. (1) in the paper
//! (mean for GraphSAGE, sum for GIN, attention-weighted sum for GAT).

use crate::autograd::{Node, Var};
use crate::kernels;
use crate::shape::Shape;
use crate::tensor::Tensor;

fn check_edges(src: &[u32], dst: &[u32], n_src: usize, n_dst: usize) {
    assert_eq!(src.len(), dst.len(), "edge list length mismatch");
    debug_assert!(
        src.iter().all(|&s| (s as usize) < n_src),
        "source id out of range"
    );
    debug_assert!(
        dst.iter().all(|&d| (d as usize) < n_dst),
        "destination id out of range"
    );
}

impl Var {
    /// Gathers rows by index: `out[i] = self[idx[i]]`.
    ///
    /// Backward scatter-adds the output gradient back to the gathered rows.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[u32]) -> Var {
        let a = self.value();
        let (rows, cols) = (a.rows(), a.cols());
        debug_assert!(idx.iter().all(|&i| (i as usize) < rows), "gather index out of range");
        let out = kernels::gather_rows_forward(a.data(), cols, idx);
        let out = Tensor::from_vec(out, Shape::matrix(idx.len(), cols));
        let ia = self.id;
        let idx = idx.to_vec();
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                let dx = kernels::gather_rows_backward(g.data(), cols, &idx, rows);
                vec![(ia, Tensor::from_vec(dx, Shape::matrix(rows, cols)))]
            })),
            param: None,
        })
    }

    /// Mean aggregation over a bipartite edge list:
    /// `out[d] = mean { self[s] : (s, d) ∈ edges }`, with zero rows for
    /// destinations that have no incoming edge.
    ///
    /// This is GraphSAGE's neighborhood mean.
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dst.len()` (and, in debug builds, if any id is
    /// out of range).
    pub fn scatter_mean(&self, src: &[u32], dst: &[u32], n_dst: usize) -> Var {
        let a = self.value();
        let cols = a.cols();
        check_edges(src, dst, a.rows(), n_dst);
        let mut counts = vec![0.0f32; n_dst];
        for &d in dst {
            // lint: allow(panic-reachability, dst/src indices are validated against n_dst/n_src at op entry)
            counts[d as usize] += 1.0;
        }
        let out =
            kernels::scatter_reduce_forward(a.data(), cols, src, dst, n_dst, Some(&counts));
        let ia = self.id;
        let (src, dst) = (src.to_vec(), dst.to_vec());
        let n_src = a.rows();
        self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(n_dst, cols)),
            backward: Some(Box::new(move |g| {
                let dx = kernels::scatter_reduce_backward(
                    g.data(),
                    cols,
                    &src,
                    &dst,
                    n_src,
                    Some(&counts),
                );
                vec![(ia, Tensor::from_vec(dx, Shape::matrix(n_src, cols)))]
            })),
            param: None,
        })
    }

    /// Sum aggregation over a bipartite edge list (GIN's neighborhood sum).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dst.len()`.
    pub fn scatter_add(&self, src: &[u32], dst: &[u32], n_dst: usize) -> Var {
        let a = self.value();
        let cols = a.cols();
        check_edges(src, dst, a.rows(), n_dst);
        let out = kernels::scatter_reduce_forward(a.data(), cols, src, dst, n_dst, None);
        let ia = self.id;
        let (src, dst) = (src.to_vec(), dst.to_vec());
        let n_src = a.rows();
        self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(n_dst, cols)),
            backward: Some(Box::new(move |g| {
                let dx =
                    kernels::scatter_reduce_backward(g.data(), cols, &src, &dst, n_src, None);
                vec![(ia, Tensor::from_vec(dx, Shape::matrix(n_src, cols)))]
            })),
            param: None,
        })
    }


    /// Max aggregation over a bipartite edge list:
    /// `out[d][c] = max { self[s][c] : (s, d) ∈ edges }`, with zero rows for
    /// destinations that have no incoming edge (GraphSAGE's pooling
    /// aggregator applies this after a per-neighbor MLP).
    ///
    /// The backward pass routes each output gradient to the arg-max source
    /// (ties broken by the first edge encountered).
    ///
    /// # Panics
    ///
    /// Panics if `src.len() != dst.len()`.
    pub fn scatter_max(&self, src: &[u32], dst: &[u32], n_dst: usize) -> Var {
        let a = self.value();
        let cols = a.cols();
        check_edges(src, dst, a.rows(), n_dst);
        let ad = a.data();
        let mut out = vec![f32::NEG_INFINITY; n_dst * cols];
        let mut argmax: Vec<u32> = vec![u32::MAX; n_dst * cols];
        for (&s, &d) in src.iter().zip(dst.iter()) {
            let (s, d) = (s as usize, d as usize);
            for c in 0..cols {
                let v = ad[s * cols + c];
                let slot = d * cols + c;
                if v > out[slot] {
                    out[slot] = v;
                    argmax[slot] = s as u32;
                }
            }
        }
        // Destinations with no edges produce zero rows (not -inf).
        for (o, am) in out.iter_mut().zip(argmax.iter()) {
            if *am == u32::MAX {
                *o = 0.0;
            }
        }
        let ia = self.id;
        let n_src = a.rows();
        self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(n_dst, cols)),
            backward: Some(Box::new(move |g| {
                let gd = g.data();
                let mut dx = vec![0.0f32; n_src * cols];
                for (slot, &am) in argmax.iter().enumerate() {
                    if am != u32::MAX {
                        let c = slot % cols;
                        dx[am as usize * cols + c] += gd[slot];
                    }
                }
                vec![(ia, Tensor::from_vec(dx, Shape::matrix(n_src, cols)))]
            })),
            param: None,
        })
    }

    /// Softmax over edge logits grouped by destination node (GAT attention
    /// normalization). `self` must be a length-`E` vector of logits.
    ///
    /// # Panics
    ///
    /// Panics if the logit count differs from `dst.len()`.
    pub fn edge_softmax(&self, dst: &[u32], n_dst: usize) -> Var {
        let logits = self.value();
        assert_eq!(logits.len(), dst.len(), "one logit per edge required");
        debug_assert!(dst.iter().all(|&d| (d as usize) < n_dst));
        let ld = logits.data();
        let mut maxes = vec![f32::NEG_INFINITY; n_dst];
        for (e, &d) in dst.iter().enumerate() {
            let d = d as usize;
            maxes[d] = maxes[d].max(ld[e]);
        }
        let mut sums = vec![0.0f32; n_dst];
        let mut alpha = vec![0.0f32; ld.len()];
        for (e, &d) in dst.iter().enumerate() {
            let d = d as usize;
            let v = (ld[e] - maxes[d]).exp();
            alpha[e] = v;
            sums[d] += v;
        }
        for (e, &d) in dst.iter().enumerate() {
            alpha[e] /= sums[d as usize];
        }
        let alpha_t = Tensor::from_vec(alpha.clone(), Shape::vector(ld.len()));
        let ia = self.id;
        let dst = dst.to_vec();
        self.tape().push(Node {
            value: alpha_t,
            backward: Some(Box::new(move |g| {
                // dl_e = a_e * (g_e - sum_{e' in group(e)} g_{e'} a_{e'})
                let gd = g.data();
                let mut group_dot = vec![0.0f32; n_dst];
                for (e, &d) in dst.iter().enumerate() {
                    group_dot[d as usize] += gd[e] * alpha[e];
                }
                let mut dl = vec![0.0f32; alpha.len()];
                for (e, &d) in dst.iter().enumerate() {
                    dl[e] = alpha[e] * (gd[e] - group_dot[d as usize]);
                }
                vec![(ia, Tensor::from_vec(dl, Shape::vector(alpha.len())))]
            })),
            param: None,
        })
    }

    /// Attention-weighted aggregation: `out[d] = Σ_e α_e · self[src_e]` over
    /// edges `(src_e, d)`. `alpha` must be a length-`E` vector.
    ///
    /// Gradients flow to both the source features and the weights.
    ///
    /// # Panics
    ///
    /// Panics if edge lists and weights disagree in length.
    pub fn weighted_scatter_add(
        &self,
        alpha: &Var,
        src: &[u32],
        dst: &[u32],
        n_dst: usize,
    ) -> Var {
        self.same_tape(alpha);
        let x = self.value();
        let w = alpha.value();
        let cols = x.cols();
        check_edges(src, dst, x.rows(), n_dst);
        assert_eq!(w.len(), src.len(), "one weight per edge required");
        let (xd, wd) = (x.data(), w.data());
        let mut out = vec![0.0f32; n_dst * cols];
        for (e, (&s, &d)) in src.iter().zip(dst.iter()).enumerate() {
            let (s, d) = (s as usize, d as usize);
            let a = wd[e];
            for (o, v) in out[d * cols..(d + 1) * cols]
                .iter_mut()
                .zip(xd[s * cols..(s + 1) * cols].iter())
            {
                *o += a * v;
            }
        }
        let (ix, iw) = (self.id, alpha.id);
        let (src, dst) = (src.to_vec(), dst.to_vec());
        let n_src = x.rows();
        self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(n_dst, cols)),
            backward: Some(Box::new(move |g| {
                let gd = g.data();
                let xd = x.data();
                let wd = w.data();
                let mut dx = vec![0.0f32; n_src * cols];
                let mut dw = vec![0.0f32; src.len()];
                for (e, (&s, &d)) in src.iter().zip(dst.iter()).enumerate() {
                    let (s, d) = (s as usize, d as usize);
                    let grow = &gd[d * cols..(d + 1) * cols];
                    let xrow = &xd[s * cols..(s + 1) * cols];
                    let a = wd[e];
                    let mut dot = 0.0f32;
                    for ((x_acc, &gv), &xv) in
                        dx[s * cols..(s + 1) * cols].iter_mut().zip(grow).zip(xrow)
                    {
                        *x_acc += a * gv;
                        dot += gv * xv;
                    }
                    dw[e] = dot;
                }
                vec![
                    (ix, Tensor::from_vec(dx, Shape::matrix(n_src, cols))),
                    (iw, Tensor::from_vec(dw, Shape::vector(src.len()))),
                ]
            })),
            param: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;

    fn t(data: &[f32], shape: impl Into<Shape>) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn gather_rows_forward_and_backward() {
        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]));
        let y = x.gather_rows(&[2, 0, 2]);
        assert_eq!(y.value().data(), &[5.0, 6.0, 1.0, 2.0, 5.0, 6.0]);
        let g = tape.backward(&y.sum_all());
        // Row 2 gathered twice, row 0 once, row 1 never.
        assert_eq!(g.wrt(&x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn scatter_mean_averages_neighbors() {
        let tape = Tape::new();
        let x = tape.constant(t(&[2.0, 4.0, 6.0], [3, 1]));
        // dst 0 <- src {0, 1}; dst 1 <- src {2}; dst 2 has no edges.
        let y = x.scatter_mean(&[0, 1, 2], &[0, 0, 1], 3);
        assert_eq!(y.value().data(), &[3.0, 6.0, 0.0]);
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[0.5, 0.5, 1.0]);
    }

    #[test]
    fn scatter_add_sums_neighbors() {
        let tape = Tape::new();
        let x = tape.constant(t(&[2.0, 4.0, 6.0], [3, 1]));
        let y = x.scatter_add(&[0, 1, 2], &[0, 0, 1], 2);
        assert_eq!(y.value().data(), &[6.0, 6.0]);
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn edge_softmax_normalizes_per_destination() {
        let tape = Tape::new();
        let l = tape.constant(t(&[0.0, 0.0, 1.0, 3.0], [4]));
        // dst groups: {e0, e1} -> 0, {e2, e3} -> 1.
        let a = l.edge_softmax(&[0, 0, 1, 1], 2).value();
        assert!((a.data()[0] - 0.5).abs() < 1e-6);
        assert!((a.data()[1] - 0.5).abs() < 1e-6);
        let z = (1.0f32).exp() + (3.0f32).exp();
        assert!((a.data()[2] - (1.0f32).exp() / z).abs() < 1e-6);
        assert!((a.data()[3] - (3.0f32).exp() / z).abs() < 1e-6);
    }

    #[test]
    fn edge_softmax_gradient_matches_numeric() {
        let dst = [0u32, 0, 0, 1, 1];
        let logits = [0.3f32, -0.2, 0.9, 0.1, 0.4];
        // Loss = sum of alpha^2, a curved function to exercise the Jacobian.
        let f = |ls: &[f32]| {
            let tape = Tape::new();
            let l = tape.constant(t(ls, [5]));
            let a = l.edge_softmax(&dst, 2);
            let loss = a.mul(&a).sum_all();
            (tape, l, loss)
        };
        let (tape, l, loss) = f(&logits);
        let g = tape.backward(&loss);
        let analytic = g.wrt(&l).unwrap().clone();
        let eps = 1e-3;
        for e in 0..5 {
            let mut lp = logits;
            lp[e] += eps;
            let (_, _, up) = f(&lp);
            let mut lm = logits;
            lm[e] -= eps;
            let (_, _, down) = f(&lm);
            let numeric = (up.value().item() - down.value().item()) / (2.0 * eps);
            assert!(
                (analytic.data()[e] - numeric).abs() < 1e-3,
                "edge {e}: {} vs {}",
                analytic.data()[e],
                numeric
            );
        }
    }

    #[test]
    fn weighted_scatter_add_forward_and_grads() {
        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 2.0, 10.0, 20.0], [2, 2]));
        let w = tape.constant(t(&[0.25, 0.75], [2]));
        // Both edges into dst 0: out = 0.25*x0 + 0.75*x1.
        let y = x.weighted_scatter_add(&w, &[0, 1], &[0, 0], 1);
        assert_eq!(y.value().data(), &[7.75, 15.5]);
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[0.25, 0.25, 0.75, 0.75]);
        // dα_e = dot(x[src_e], ones) = row sums.
        assert_eq!(g.wrt(&w).unwrap().data(), &[3.0, 30.0]);
    }


    #[test]
    fn scatter_max_takes_columnwise_max() {
        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 5.0, 3.0, 2.0, 4.0, 0.0], [3, 2]));
        // dst 0 <- src {0, 1}; dst 1 <- src {2}; dst 2 empty.
        let y = x.scatter_max(&[0, 1, 2], &[0, 0, 1], 3);
        assert_eq!(y.value().data(), &[3.0, 5.0, 4.0, 0.0, 0.0, 0.0]);
        let g = tape.backward(&y.sum_all());
        // Gradient flows to the argmax entries only: dst0 col0 came from
        // src1, dst0 col1 from src0, and dst1 (both columns) from src2.
        assert_eq!(g.wrt(&x).unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn scatter_max_handles_negative_values() {
        let tape = Tape::new();
        let x = tape.constant(t(&[-3.0, -1.0], [2, 1]));
        let y = x.scatter_max(&[0, 1], &[0, 0], 1);
        assert_eq!(y.value().data(), &[-1.0], "max of negatives is not clamped to 0");
    }

    #[test]
    fn empty_edge_list_yields_zero_rows() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([2, 3]));
        let y = x.scatter_mean(&[], &[], 2);
        assert_eq!(y.value().data(), &[0.0; 6]);
    }
}
