//! Weight initializers.

use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::rng::Rng;

/// Uniform Glorot/Xavier initialization for a `fan_in × fan_out` weight
/// matrix: entries drawn from `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
///
/// This matches the PyTorch Geometric default used by the paper's models.
pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.random_range(-a..=a))
        .collect();
    Tensor::from_vec(data, Shape::matrix(fan_in, fan_out))
}

/// Kaiming/He uniform initialization: `U(-a, a)` with `a = sqrt(6 / fan_in)`,
/// appropriate before ReLU nonlinearities.
pub fn kaiming_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / fan_in.max(1) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| rng.random_range(-a..=a))
        .collect();
    Tensor::from_vec(data, Shape::matrix(fan_in, fan_out))
}

/// Standard normal entries scaled by `std`.
pub fn normal(shape: impl Into<Shape>, std: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    // Box–Muller transform over the crate RNG's uniform primitive.
    let n = shape.len();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.random::<f32>().max(1e-12);
        let u2: f32 = rng.random();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(data, shape)
}

/// Uniform entries in `[lo, hi)`.
pub fn uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    let shape = shape.into();
    let data = (0..shape.len()).map(|_| rng.random_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn glorot_respects_bound() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = glorot_uniform(64, 32, &mut rng);
        let a = (6.0 / 96.0f32).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= a));
        assert_eq!(w.shape().dims(), &[64, 32]);
    }

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = normal([10_000], 2.0, &mut rng);
        assert!(w.mean().abs() < 0.1);
        let var = w.data().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        assert_eq!(
            glorot_uniform(4, 4, &mut a).data(),
            glorot_uniform(4, 4, &mut b).data()
        );
    }
}
