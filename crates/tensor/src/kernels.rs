//! The CPU performance kernel layer: cache-blocked parallel GEMM and fused
//! CSR-style gather/scatter aggregation.
//!
//! SALIENT's thesis is that the per-batch hot path must be performance-
//! engineered end to end; for this CPU reproduction the dense update
//! (`X @ W`) and the message-passing aggregation (gather / scatter-mean)
//! are that hot path. Everything here is std-only and runs on the
//! work-sharing pool in [`crate::pool`].
//!
//! Design notes:
//!
//! * **GEMM** is blocked (MC×KC×NC) with the `op(B)` panel packed into a
//!   contiguous buffer once per (K-block, N-block) and `op(A)` packed per
//!   row block into thread-local scratch, so all four transpose variants
//!   run the same unit-stride inner kernel. On x86-64 with AVX2 + FMA
//!   (detected at runtime, no compile-time flags needed) the inner kernel
//!   is a register-tiled 4-row × 16-column micro-kernel: eight `ymm`
//!   accumulators stay in registers across the whole K block, so each
//!   packed-B load feeds four FMAs instead of one. Elsewhere a portable
//!   4-way K-unrolled loop auto-vectorizes as well as the baseline ISA
//!   allows.
//! * **Aggregation** first builds a CSR index over the edge list (stable
//!   counting sort by destination — or by source for backward passes), then
//!   computes each output row *fully, in edge order* inside one task. No
//!   atomics, no per-call allocation churn (index buffers come from a
//!   thread-local scratch pool), and — because every output element is
//!   produced by the same serial reduction regardless of how rows are
//!   chunked — results are bitwise identical for any thread count.

use crate::pool::{parallel_for, SendPtr};
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;

// ---------------------------------------------------------------------------
// Thread-local scratch buffers
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Scratch {
    u32s: Vec<Vec<u32>>,
    f32s: Vec<Vec<f32>>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Checks out a cleared `Vec<u32>` with at least `cap` capacity from the
/// calling thread's scratch pool (allocating only on first use).
pub(crate) fn take_u32(cap: usize) -> Vec<u32> {
    SCRATCH.with(|s| {
        let mut v = s.borrow_mut().u32s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    })
}

/// Returns a `u32` scratch buffer for reuse.
pub(crate) fn put_u32(v: Vec<u32>) {
    SCRATCH.with(|s| s.borrow_mut().u32s.push(v));
}

/// Checks out a cleared `Vec<f32>` with at least `cap` capacity.
pub(crate) fn take_f32(cap: usize) -> Vec<f32> {
    SCRATCH.with(|s| {
        let mut v = s.borrow_mut().f32s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    })
}

/// Returns an `f32` scratch buffer for reuse.
pub(crate) fn put_f32(v: Vec<f32>) {
    SCRATCH.with(|s| s.borrow_mut().f32s.push(v));
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// Row block assigned to one parallel task.
const MC: usize = 64;
/// K (inner-dimension) block; the packed B panel holds KC×NC floats.
const KC: usize = 256;
/// Column block: KC×NC×4 bytes = 256 KiB keeps the panel L2-resident.
const NC: usize = 256;

/// Below this many multiply-adds the blocked/parallel machinery costs more
/// than it saves; fall back to the straightforward loop.
const GEMM_SERIAL_FLOP_CUTOFF: usize = 1 << 15;

/// Dense matrix multiply `op(a) * op(b)` where `op` optionally transposes.
///
/// Shapes: with `ta = tb = false`, `a` is `m×k`, `b` is `k×n`, result `m×n`.
///
/// # Panics
///
/// Panics if the inner dimensions do not agree.
pub fn gemm(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    let (ar, ac) = (a.rows(), a.cols());
    let (br, bc) = (b.rows(), b.cols());
    let (m, k1) = if ta { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    assert_eq!(
        k1, k2,
        "gemm inner dimension mismatch: {}x{} ({}) @ {}x{} ({})",
        ar, ac, ta, br, bc, tb
    );
    let k = k1;
    let mut out = vec![0.0f32; m * n];
    gemm_into(&mut out, a.data(), b.data(), ta, tb, m, n, k, ac, bc);
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// The seed's scalar triple-loop GEMM, kept as the correctness / performance
/// reference for tests and `BENCH_kernels.json`.
pub fn gemm_naive(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    let (ar, ac) = (a.rows(), a.cols());
    let (br, bc) = (b.rows(), b.cols());
    let (m, k1) = if ta { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    assert_eq!(k1, k2, "gemm inner dimension mismatch");
    let k = k1;
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let at = |i: usize, p: usize| if ta { ad[p * ac + i] } else { ad[i * ac + p] };
    let bt = |p: usize, j: usize| if tb { bd[j * bc + p] } else { bd[p * bc + j] };
    match (ta, tb) {
        (false, false) => {
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
        _ => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += at(i, p) * bt(p, j);
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// Packs `op(b)[pc..pc+kcb, jc..jc+ncb]` row-major into `bpack`.
#[inline]
fn pack_b(
    bpack: &mut Vec<f32>,
    bd: &[f32],
    tb: bool,
    b_cols: usize,
    pc: usize,
    kcb: usize,
    jc: usize,
    ncb: usize,
) {
    bpack.clear();
    if !tb {
        for p in 0..kcb {
            let row = &bd[(pc + p) * b_cols + jc..(pc + p) * b_cols + jc + ncb];
            bpack.extend_from_slice(row);
        }
    } else {
        // b is n×k physical; op(b)[p][j] = b[j][p].
        for p in 0..kcb {
            for j in 0..ncb {
                bpack.push(bd[(jc + j) * b_cols + (pc + p)]);
            }
        }
    }
}

/// Packs `op(a)[i0..i0+mb, pc..pc+kcb]` row-major into `apack`.
#[inline]
fn pack_a(
    apack: &mut Vec<f32>,
    ad: &[f32],
    ta: bool,
    a_cols: usize,
    i0: usize,
    mb: usize,
    pc: usize,
    kcb: usize,
) {
    apack.clear();
    if !ta {
        for i in 0..mb {
            let row = &ad[(i0 + i) * a_cols + pc..(i0 + i) * a_cols + pc + kcb];
            apack.extend_from_slice(row);
        }
    } else {
        // a is k×m physical; op(a)[i][p] = a[p][i].
        for i in 0..mb {
            for p in 0..kcb {
                apack.push(ad[(pc + p) * a_cols + (i0 + i)]);
            }
        }
    }
}

/// The packed inner kernel: `orow[0..ncb] += Σ_p arow[p] * bpack[p][0..ncb]`
/// with the K loop 4-way unrolled so the output row is touched once per
/// four K steps and the j-loop vectorizes to FMA chains.
#[inline]
fn kernel_row(arow: &[f32], bpack: &[f32], orow: &mut [f32], kcb: usize, ncb: usize) {
    debug_assert_eq!(arow.len(), kcb);
    debug_assert_eq!(orow.len(), ncb);
    let mut p = 0;
    while p + 4 <= kcb {
        let a0 = arow[p];
        let a1 = arow[p + 1];
        let a2 = arow[p + 2];
        let a3 = arow[p + 3];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        let b1 = &bpack[(p + 1) * ncb..(p + 1) * ncb + ncb];
        let b2 = &bpack[(p + 2) * ncb..(p + 2) * ncb + ncb];
        let b3 = &bpack[(p + 3) * ncb..(p + 3) * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        p += 4;
    }
    while p < kcb {
        let a0 = arow[p];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j];
        }
        p += 1;
    }
}

/// The AVX2 + FMA register-tiled micro-kernel, selected at runtime with
/// `is_x86_feature_detected!` so the crate still builds (and falls back to
/// [`kernel_row`]) on the x86-64 baseline target and other architectures.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;

    /// One-time CPUID probe for AVX2 + FMA.
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAIL: OnceLock<bool> = OnceLock::new();
        *AVAIL.get_or_init(|| {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        })
    }

    /// Mask with the first `rem` (1..=8) lanes enabled, for
    /// `maskload`/`maskstore` on partial column tiles.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and `rem` is in `1..=8`: the
    /// unaligned load reads 8 lanes starting at `M[8 - rem]`, which stays
    /// inside the 16-entry table only for that range.
    #[target_feature(enable = "avx")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        const M: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];
        _mm256_loadu_si256(M.as_ptr().add(8 - rem) as *const __m256i)
    }

    /// `out[0..mb][0..ncb] += apack[mb×kcb] · bpack[kcb×ncb]`, where block
    /// row `i` lives at `out0 + i*n`.
    ///
    /// The main tile is 4 output rows × 16 columns: eight `ymm` accumulators
    /// live in registers across the entire K loop, so each of the two
    /// packed-B vector loads per K step is reused by four FMAs (the 1×N
    /// kernel gets one use per load — this reuse is the entire speedup).
    /// Remainder rows run a 1×16 tile and remainder columns masked ≤8-wide
    /// tiles; every path accumulates fused, in the same K order, so an
    /// output element's value does not depend on how rows were chunked
    /// across threads.
    ///
    /// # Safety
    ///
    /// Caller must check [`available`], and the pointers must cover the
    /// block extents described above.
    #[target_feature(enable = "avx,avx2,fma")]
    pub unsafe fn kernel_block(
        apack: *const f32,
        bpack: *const f32,
        out0: *mut f32,
        n: usize,
        mb: usize,
        kcb: usize,
        ncb: usize,
    ) {
        let mut i = 0;
        while i + 4 <= mb {
            let a0 = apack.add(i * kcb);
            let a1 = a0.add(kcb);
            let a2 = a1.add(kcb);
            let a3 = a2.add(kcb);
            let o0 = out0.add(i * n);
            let o1 = o0.add(n);
            let o2 = o1.add(n);
            let o3 = o2.add(n);
            let mut j = 0;
            while j + 16 <= ncb {
                let mut c00 = _mm256_loadu_ps(o0.add(j));
                let mut c01 = _mm256_loadu_ps(o0.add(j + 8));
                let mut c10 = _mm256_loadu_ps(o1.add(j));
                let mut c11 = _mm256_loadu_ps(o1.add(j + 8));
                let mut c20 = _mm256_loadu_ps(o2.add(j));
                let mut c21 = _mm256_loadu_ps(o2.add(j + 8));
                let mut c30 = _mm256_loadu_ps(o3.add(j));
                let mut c31 = _mm256_loadu_ps(o3.add(j + 8));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    let av0 = _mm256_set1_ps(*a0.add(p));
                    c00 = _mm256_fmadd_ps(av0, b0, c00);
                    c01 = _mm256_fmadd_ps(av0, b1, c01);
                    let av1 = _mm256_set1_ps(*a1.add(p));
                    c10 = _mm256_fmadd_ps(av1, b0, c10);
                    c11 = _mm256_fmadd_ps(av1, b1, c11);
                    let av2 = _mm256_set1_ps(*a2.add(p));
                    c20 = _mm256_fmadd_ps(av2, b0, c20);
                    c21 = _mm256_fmadd_ps(av2, b1, c21);
                    let av3 = _mm256_set1_ps(*a3.add(p));
                    c30 = _mm256_fmadd_ps(av3, b0, c30);
                    c31 = _mm256_fmadd_ps(av3, b1, c31);
                    bp = bp.add(ncb);
                }
                _mm256_storeu_ps(o0.add(j), c00);
                _mm256_storeu_ps(o0.add(j + 8), c01);
                _mm256_storeu_ps(o1.add(j), c10);
                _mm256_storeu_ps(o1.add(j + 8), c11);
                _mm256_storeu_ps(o2.add(j), c20);
                _mm256_storeu_ps(o2.add(j + 8), c21);
                _mm256_storeu_ps(o3.add(j), c30);
                _mm256_storeu_ps(o3.add(j + 8), c31);
                j += 16;
            }
            while j < ncb {
                let rem = (ncb - j).min(8);
                let mask = tail_mask(rem);
                let mut c0 = _mm256_maskload_ps(o0.add(j), mask);
                let mut c1 = _mm256_maskload_ps(o1.add(j), mask);
                let mut c2 = _mm256_maskload_ps(o2.add(j), mask);
                let mut c3 = _mm256_maskload_ps(o3.add(j), mask);
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b = _mm256_maskload_ps(bp, mask);
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(p)), b, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1.add(p)), b, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(*a2.add(p)), b, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(*a3.add(p)), b, c3);
                    bp = bp.add(ncb);
                }
                _mm256_maskstore_ps(o0.add(j), mask, c0);
                _mm256_maskstore_ps(o1.add(j), mask, c1);
                _mm256_maskstore_ps(o2.add(j), mask, c2);
                _mm256_maskstore_ps(o3.add(j), mask, c3);
                j += rem;
            }
            i += 4;
        }
        while i < mb {
            let a0 = apack.add(i * kcb);
            let o0 = out0.add(i * n);
            let mut j = 0;
            while j + 16 <= ncb {
                let mut c0 = _mm256_loadu_ps(o0.add(j));
                let mut c1 = _mm256_loadu_ps(o0.add(j + 8));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let av = _mm256_set1_ps(*a0.add(p));
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), c0);
                    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), c1);
                    bp = bp.add(ncb);
                }
                _mm256_storeu_ps(o0.add(j), c0);
                _mm256_storeu_ps(o0.add(j + 8), c1);
                j += 16;
            }
            while j < ncb {
                let rem = (ncb - j).min(8);
                let mask = tail_mask(rem);
                let mut c = _mm256_maskload_ps(o0.add(j), mask);
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b = _mm256_maskload_ps(bp, mask);
                    c = _mm256_fmadd_ps(_mm256_set1_ps(*a0.add(p)), b, c);
                    bp = bp.add(ncb);
                }
                _mm256_maskstore_ps(o0.add(j), mask, c);
                j += rem;
            }
            i += 1;
        }
    }
}

/// Blocked, packed, parallel GEMM into a pre-zeroed output buffer.
///
/// The loop nest is `jc → pc → (parallel over row blocks) → i`; K blocks
/// are accumulated in increasing `pc` order for every output element, so
/// the result is bitwise identical for any thread count.
#[allow(clippy::too_many_arguments)]
fn gemm_into(
    out: &mut [f32],
    ad: &[f32],
    bd: &[f32],
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a_cols: usize,
    b_cols: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut bpack = take_f32(KC * NC.min(n));
    let out_ptr = SendPtr(out.as_mut_ptr());
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kcb = KC.min(k - pc);
            pack_b(&mut bpack, bd, tb, b_cols, pc, kcb, jc, ncb);
            let bp: &[f32] = &bpack;
            let body = |i0: usize, i1: usize| {
                let mb = i1 - i0;
                let mut apack = take_f32(MC * KC);
                pack_a(&mut apack, ad, ta, a_cols, i0, mb, pc, kcb);
                // Row blocks are disjoint in i, so chunks never alias.
                #[cfg(target_arch = "x86_64")]
                if simd::available() {
                    // SAFETY: `available()` checked AVX2+FMA; `out_ptr`
                    // spans the m×n output, rows [i0, i1) are exclusive to
                    // this task, and the packed operands cover mb×kcb and
                    // kcb×ncb as `kernel_block` requires.
                    unsafe {
                        let out0 = out_ptr.0.add(i0 * n + jc);
                        simd::kernel_block(apack.as_ptr(), bp.as_ptr(), out0, n, mb, kcb, ncb);
                    }
                    put_f32(apack);
                    return;
                }
                for i in 0..mb {
                    let arow = &apack[i * kcb..(i + 1) * kcb];
                    // SAFETY: output row i0 + i < m and jc + ncb <= n, so
                    // the slice stays inside the output buffer; row blocks
                    // are disjoint across tasks, so it is never aliased.
                    let orow =
                        unsafe { out_ptr.slice_mut((i0 + i) * n + jc, ncb) };
                    kernel_row(arow, bp, orow, kcb, ncb);
                }
                put_f32(apack);
            };
            if 2 * m * ncb * kcb < GEMM_SERIAL_FLOP_CUTOFF {
                body(0, m);
            } else {
                parallel_for(m, MC.min(m), &body);
            }
        }
    }
    put_f32(bpack);
}

// ---------------------------------------------------------------------------
// CSR index over edge lists
// ---------------------------------------------------------------------------

/// Builds a CSR index over `keys` (stable counting sort) and hands
/// `(offsets, order)` to `f`: edge ids with key `d` are
/// `order[offsets[d] as usize .. offsets[d + 1] as usize]`, in their
/// original edge-list order. The two index buffers live in thread-local
/// scratch, so steady-state calls allocate nothing.
pub(crate) fn with_csr<R>(
    keys: &[u32],
    n_keys: usize,
    f: impl FnOnce(&[u32], &[u32]) -> R,
) -> R {
    let mut offsets = take_u32(n_keys + 1);
    let mut order = take_u32(keys.len());
    offsets.resize(n_keys + 1, 0);
    for &d in keys {
        offsets[d as usize + 1] += 1;
    }
    for i in 0..n_keys {
        offsets[i + 1] += offsets[i];
    }
    order.resize(keys.len(), 0);
    let mut cursor = take_u32(n_keys);
    cursor.extend_from_slice(&offsets[..n_keys]);
    for (e, &d) in keys.iter().enumerate() {
        let c = &mut cursor[d as usize];
        order[*c as usize] = e as u32;
        *c += 1;
    }
    put_u32(cursor);
    let r = f(&offsets, &order);
    put_u32(offsets);
    put_u32(order);
    r
}

/// Minimum output rows per parallel chunk for aggregation kernels.
const AGG_MIN_CHUNK: usize = 16;
/// Serial cutoff: below this many edge·column products the pool dispatch
/// overhead dominates.
const AGG_SERIAL_CUTOFF: usize = 1 << 14;

/// `out[i] = x[idx[i]]` — parallel row gather.
pub fn gather_rows_forward(xd: &[f32], cols: usize, idx: &[u32]) -> Vec<f32> {
    let mut out = vec![0.0f32; idx.len() * cols];
    if idx.len() * cols < AGG_SERIAL_CUTOFF {
        for (e, &i) in idx.iter().enumerate() {
            out[e * cols..(e + 1) * cols]
                .copy_from_slice(&xd[i as usize * cols..(i as usize + 1) * cols]);
        }
        return out;
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(idx.len(), AGG_MIN_CHUNK, &|e0, e1| {
        // SAFETY: `out` has idx.len()·cols elements and parallel_for hands
        // each task a disjoint [e0, e1) row range, so the slice is in
        // bounds and unaliased.
        let orows = unsafe { out_ptr.slice_mut(e0 * cols, (e1 - e0) * cols) };
        for (e, orow) in (e0..e1).zip(orows.chunks_exact_mut(cols)) {
            let i = idx[e] as usize;
            orow.copy_from_slice(&xd[i * cols..(i + 1) * cols]);
        }
    });
    out
}

/// Backward of [`gather_rows_forward`]: scatter-adds each gradient row `e`
/// into `dx[idx[e]]`. Parallelized by *destination* row via a CSR index so
/// no two tasks write the same row and the per-row reduction order is
/// fixed (bitwise deterministic for any thread count).
pub fn gather_rows_backward(gd: &[f32], cols: usize, idx: &[u32], n_src: usize) -> Vec<f32> {
    let mut dx = vec![0.0f32; n_src * cols];
    with_csr(idx, n_src, |offsets, order| {
        let dx_ptr = SendPtr(dx.as_mut_ptr());
        let body = |r0: usize, r1: usize| {
            // SAFETY: `dx` has n_src·cols elements and tasks receive
            // disjoint destination-row ranges [r0, r1) ⊆ [0, n_src), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { dx_ptr.slice_mut(r0 * cols, (r1 - r0) * cols) };
            for (r, drow) in (r0..r1).zip(rows.chunks_exact_mut(cols)) {
                for &e in &order[offsets[r] as usize..offsets[r + 1] as usize] {
                    let grow = &gd[e as usize * cols..(e as usize + 1) * cols];
                    for (d, &v) in drow.iter_mut().zip(grow) {
                        *d += v;
                    }
                }
            }
        };
        if idx.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_src);
        } else {
            parallel_for(n_src, AGG_MIN_CHUNK, &body);
        }
    });
    dx
}

/// Fused CSR scatter-aggregation: for each destination `d`,
/// `out[d] = reduce { x[s] : (s, d) ∈ edges }` where the reduction is a sum,
/// optionally scaled by `1 / weight[d]` in the same pass (mean), all inside
/// one task per destination-row chunk.
///
/// `dst_weight`: `None` for sum (GIN), `Some(counts)` for mean (SAGE).
pub fn scatter_reduce_forward(
    xd: &[f32],
    cols: usize,
    src: &[u32],
    dst: &[u32],
    n_dst: usize,
    dst_weight: Option<&[f32]>,
) -> Vec<f32> {
    let mut out = vec![0.0f32; n_dst * cols];
    with_csr(dst, n_dst, |offsets, order| {
        let out_ptr = SendPtr(out.as_mut_ptr());
        let body = |d0: usize, d1: usize| {
            // SAFETY: `out` has n_dst·cols elements and tasks receive
            // disjoint destination-row ranges [d0, d1) ⊆ [0, n_dst), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { out_ptr.slice_mut(d0 * cols, (d1 - d0) * cols) };
            for (d, orow) in (d0..d1).zip(rows.chunks_exact_mut(cols)) {
                let edges = &order[offsets[d] as usize..offsets[d + 1] as usize];
                for &e in edges {
                    let s = src[e as usize] as usize;
                    let xrow = &xd[s * cols..(s + 1) * cols];
                    for (o, &v) in orow.iter_mut().zip(xrow) {
                        *o += v;
                    }
                }
                if let Some(w) = dst_weight {
                    let c = w[d];
                    if c > 0.0 {
                        let inv = 1.0 / c;
                        for o in orow.iter_mut() {
                            *o *= inv;
                        }
                    }
                }
            }
        };
        if src.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_dst);
        } else {
            parallel_for(n_dst, AGG_MIN_CHUNK, &body);
        }
    });
    out
}

/// Backward of [`scatter_reduce_forward`]: routes `g[dst]` (scaled by
/// `1 / weight[dst]` for mean) back to each source row. Parallelized by
/// source row via a CSR index over `src` — again write-disjoint and
/// order-deterministic.
pub fn scatter_reduce_backward(
    gd: &[f32],
    cols: usize,
    src: &[u32],
    dst: &[u32],
    n_src: usize,
    dst_weight: Option<&[f32]>,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; n_src * cols];
    with_csr(src, n_src, |offsets, order| {
        let dx_ptr = SendPtr(dx.as_mut_ptr());
        let body = |s0: usize, s1: usize| {
            // SAFETY: `dx` has n_src·cols elements and tasks receive
            // disjoint source-row ranges [s0, s1) ⊆ [0, n_src), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { dx_ptr.slice_mut(s0 * cols, (s1 - s0) * cols) };
            for (s, drow) in (s0..s1).zip(rows.chunks_exact_mut(cols)) {
                for &e in &order[offsets[s] as usize..offsets[s + 1] as usize] {
                    let d = dst[e as usize] as usize;
                    let grow = &gd[d * cols..(d + 1) * cols];
                    match dst_weight {
                        Some(w) => {
                            let inv = 1.0 / w[d];
                            for (x, &v) in drow.iter_mut().zip(grow) {
                                *x += inv * v;
                            }
                        }
                        None => {
                            for (x, &v) in drow.iter_mut().zip(grow) {
                                *x += v;
                            }
                        }
                    }
                }
            }
        };
        if src.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_src);
        } else {
            parallel_for(n_src, AGG_MIN_CHUNK, &body);
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
        Tensor::from_vec(
            (0..r * c).map(|_| rng.random_range(-2.0f32..2.0)).collect(),
            Shape::matrix(r, c),
        )
    }

    fn max_rel_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_gemm_matches_naive_over_random_shapes() {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for case in 0..60 {
            let m = rng.random_range(1usize..90);
            let k = rng.random_range(1usize..90);
            let n = rng.random_range(1usize..90);
            let (ta, tb) = (case % 2 == 1, (case / 2) % 2 == 1);
            let a = if ta { rand_tensor(k, m, &mut rng) } else { rand_tensor(m, k, &mut rng) };
            let b = if tb { rand_tensor(n, k, &mut rng) } else { rand_tensor(k, n, &mut rng) };
            let fast = gemm(&a, &b, ta, tb);
            let slow = gemm_naive(&a, &b, ta, tb);
            let diff = max_rel_diff(&fast, &slow);
            assert!(
                diff < 1e-4,
                "case {case} ({m}x{k}x{n}, ta={ta}, tb={tb}): rel diff {diff}"
            );
        }
    }

    #[test]
    fn blocked_gemm_exercises_multiple_blocks() {
        // Shapes straddling the MC/KC/NC boundaries.
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(MC + 3, KC + 5, NC + 1), (2 * MC, 2 * KC, 7), (1, KC * 2 + 3, NC)] {
            let a = rand_tensor(m, k, &mut rng);
            let b = rand_tensor(k, n, &mut rng);
            let diff = max_rel_diff(&gemm(&a, &b, false, false), &gemm_naive(&a, &b, false, false));
            assert!(diff < 1e-4, "{m}x{k}x{n}: rel diff {diff}");
        }
    }

    #[test]
    fn csr_index_is_stable_and_complete() {
        let keys = [2u32, 0, 2, 1, 0, 2];
        with_csr(&keys, 4, |offsets, order| {
            assert_eq!(offsets, &[0, 2, 3, 6, 6]);
            // Stability: edge ids with equal keys keep edge-list order.
            assert_eq!(&order[0..2], &[1, 4]); // key 0
            assert_eq!(&order[2..3], &[3]); // key 1
            assert_eq!(&order[3..6], &[0, 2, 5]); // key 2
        });
    }

    #[test]
    fn scatter_kernels_match_serial_edge_walk() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n_src = rng.random_range(1usize..200);
            let n_dst = rng.random_range(1usize..150);
            let cols = rng.random_range(1usize..40);
            let n_edges = rng.random_range(0usize..800);
            let src: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
            let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
            let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();

            // Reference: naive edge walk.
            let mut expect = vec![0.0f32; n_dst * cols];
            for (&s, &d) in src.iter().zip(&dst) {
                for c in 0..cols {
                    expect[d as usize * cols + c] += x[s as usize * cols + c];
                }
            }
            let got = scatter_reduce_forward(&x, cols, &src, &dst, n_dst, None);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-4, "scatter_add mismatch");
            }
        }
    }

    #[test]
    fn parallel_and_serial_chunking_are_bitwise_identical() {
        // The determinism claim: because each output row is reduced in CSR
        // edge order inside exactly one chunk, chunk boundaries (and hence
        // thread count) cannot change the result. Compare the pool-parallel
        // path against a forced single-chunk evaluation of the same kernel.
        let mut rng = StdRng::seed_from_u64(99);
        let n_src = 500;
        let n_dst = 300;
        let cols = 64; // big enough to clear AGG_SERIAL_CUTOFF
        let n_edges = 4000;
        let src: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
        let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
        let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let mut counts = vec![0.0f32; n_dst];
        for &d in &dst {
            counts[d as usize] += 1.0;
        }

        let parallel = scatter_reduce_forward(&x, cols, &src, &dst, n_dst, Some(&counts));
        // Serial reference with the *identical* per-row reduction.
        let mut serial = vec![0.0f32; n_dst * cols];
        with_csr(&dst, n_dst, |offsets, order| {
            for d in 0..n_dst {
                let orow = &mut serial[d * cols..(d + 1) * cols];
                for &e in &order[offsets[d] as usize..offsets[d + 1] as usize] {
                    let s = src[e as usize] as usize;
                    for (o, &v) in orow.iter_mut().zip(&x[s * cols..(s + 1) * cols]) {
                        *o += v;
                    }
                }
                if counts[d] > 0.0 {
                    let inv = 1.0 / counts[d];
                    for o in orow.iter_mut() {
                        *o *= inv;
                    }
                }
            }
        });
        assert_eq!(parallel, serial, "bitwise determinism across chunkings");

        let g: Vec<f32> = (0..n_dst * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let parallel_bwd =
            scatter_reduce_backward(&g, cols, &src, &dst, n_src, Some(&counts));
        let mut serial_bwd = vec![0.0f32; n_src * cols];
        with_csr(&src, n_src, |offsets, order| {
            for s in 0..n_src {
                let drow = &mut serial_bwd[s * cols..(s + 1) * cols];
                for &e in &order[offsets[s] as usize..offsets[s + 1] as usize] {
                    let d = dst[e as usize] as usize;
                    let inv = 1.0 / counts[d];
                    for (o, &v) in drow.iter_mut().zip(&g[d * cols..(d + 1) * cols]) {
                        *o += inv * v;
                    }
                }
            }
        });
        assert_eq!(parallel_bwd, serial_bwd);
    }

    #[test]
    fn gather_forward_and_backward() {
        let x: Vec<f32> = (0..6).map(|v| v as f32).collect(); // 3 rows × 2 cols
        let idx = [2u32, 0, 2];
        let out = gather_rows_forward(&x, 2, &idx);
        assert_eq!(out, vec![4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        let g = vec![1.0f32; 6];
        let dx = gather_rows_backward(&g, 2, &idx, 3);
        assert_eq!(dx, vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn gemm_determinism_across_repeated_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_tensor(300, 500, &mut rng);
        let b = rand_tensor(500, 200, &mut rng);
        let first = gemm(&a, &b, false, false);
        for _ in 0..3 {
            assert_eq!(first.data(), gemm(&a, &b, false, false).data());
        }
    }
}
