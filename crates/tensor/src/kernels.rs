//! The CPU performance kernel layer: cache-blocked parallel GEMM (f32 and
//! half-precision-input) and fused CSR-style gather/scatter aggregation.
//!
//! SALIENT's thesis is that the per-batch hot path must be performance-
//! engineered end to end; for this CPU reproduction the dense update
//! (`X @ W`) and the message-passing aggregation (gather / scatter-mean)
//! are that hot path. Everything here is std-only and runs on the
//! work-sharing pool in [`crate::pool`].
//!
//! Design notes:
//!
//! * **GEMM** is blocked (MC×KC×NC) with the `op(B)` panel packed into a
//!   contiguous buffer once per (K-block, N-block) and `op(A)` packed per
//!   row block into thread-local scratch, so all four transpose variants
//!   run the same unit-stride inner kernel. Packing is generic over the
//!   element type ([`GemmElem`]): `F16` operands are widened to `f32`
//!   *during packing* (bulk F16C kernels on contiguous rows), so the inner
//!   micro-kernel — and the fp32 accumulation order — is identical for half
//!   and full precision inputs. On x86-64 the micro-kernel is selected at
//!   runtime (no compile-time flags needed): an AVX-512 8-row × 32-column
//!   register tile where the CPU has AVX-512F, else an AVX2 + FMA 4×16
//!   tile, else a portable 4-way K-unrolled loop. Both vector kernels
//!   software-prefetch the packed-B panel a few K steps ahead.
//! * **Transposed A** (`ta = true`, the `dW = Aᵀ·g` backward shape) packs
//!   the A panel K-major instead of row-major: the pack then copies (and
//!   for `F16` bulk-widens) contiguous source rows instead of striding,
//!   and the micro-kernel reads `apack[p*mb + i]` — same FLOPs, no strided
//!   scalar pack loop.
//! * **Aggregation** first builds a CSR index over the edge list (stable
//!   counting sort by destination — or by source for backward passes), then
//!   computes each output row *fully, in edge order* inside one task. No
//!   atomics, no per-call allocation churn (index buffers come from a
//!   thread-local scratch pool), and — because every output element is
//!   produced by the same serial reduction regardless of how rows are
//!   chunked — results are bitwise identical for any thread count. Edge
//!   endpoints are validated once per call, so the per-edge inner loops use
//!   unchecked row reads plus a software prefetch of the next edge's row
//!   (the per-edge bounds/slice overhead is the indirection tax the gather
//!   path never paid).

use crate::f16::F16;
use crate::pool::{parallel_for, SendPtr};
use crate::shape::Shape;
use crate::tensor::Tensor;
use std::cell::RefCell;

// ---------------------------------------------------------------------------
// Thread-local scratch buffers
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Scratch {
    u32s: Vec<Vec<u32>>,
    f32s: Vec<Vec<f32>>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Checks out a cleared `Vec<u32>` with at least `cap` capacity from the
/// calling thread's scratch pool (allocating only on first use).
pub(crate) fn take_u32(cap: usize) -> Vec<u32> {
    SCRATCH.with(|s| {
        let mut v = s.borrow_mut().u32s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    })
}

/// Returns a `u32` scratch buffer for reuse.
pub(crate) fn put_u32(v: Vec<u32>) {
    SCRATCH.with(|s| s.borrow_mut().u32s.push(v));
}

/// Checks out a cleared `Vec<f32>` with at least `cap` capacity.
pub(crate) fn take_f32(cap: usize) -> Vec<f32> {
    SCRATCH.with(|s| {
        let mut v = s.borrow_mut().f32s.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    })
}

/// Returns an `f32` scratch buffer for reuse.
pub(crate) fn put_f32(v: Vec<f32>) {
    SCRATCH.with(|s| s.borrow_mut().f32s.push(v));
}

/// Best-effort read prefetch (no-op off x86-64). Purely a scheduling hint.
#[inline(always)]
fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: PREFETCHh is architecturally non-faulting for any address
        // and has no program-visible memory effects.
        unsafe {
            std::arch::x86_64::_mm_prefetch::<{ std::arch::x86_64::_MM_HINT_T0 }>(p as *const i8)
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = p;
    }
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// Row block assigned to one parallel task.
const MC: usize = 64;
/// K (inner-dimension) block; the packed B panel holds KC×NC floats.
const KC: usize = 256;
/// Column block: KC×NC×4 bytes = 256 KiB keeps the panel L2-resident.
const NC: usize = 256;

/// Below this many multiply-adds the blocked/parallel machinery costs more
/// than it saves; fall back to the straightforward loop.
const GEMM_SERIAL_FLOP_CUTOFF: usize = 1 << 15;

/// A GEMM operand element: either `f32` (copied while packing) or [`F16`]
/// (widened to `f32` while packing, via the bulk F16C kernels on contiguous
/// runs). Packing is where precision ends: past it the micro-kernel only
/// ever sees `f32` panels, so accumulation is always fp32.
trait GemmElem: Copy + Send + Sync {
    /// Appends `src`, widened to `f32`, onto `dst` (contiguous bulk path).
    fn widen_append(src: &[Self], dst: &mut Vec<f32>);
    /// Single-element widened read, for strided (transposed-B) packs.
    fn at(d: &[Self], i: usize) -> f32;
}

impl GemmElem for f32 {
    #[inline]
    fn widen_append(src: &[f32], dst: &mut Vec<f32>) {
        dst.extend_from_slice(src);
    }
    #[inline]
    fn at(d: &[f32], i: usize) -> f32 {
        d[i]
    }
}

impl GemmElem for F16 {
    #[inline]
    fn widen_append(src: &[F16], dst: &mut Vec<f32>) {
        let old = dst.len();
        dst.resize(old + src.len(), 0.0);
        crate::f16::widen_into(src, &mut dst[old..]);
    }
    #[inline]
    fn at(d: &[F16], i: usize) -> f32 {
        // lint: allow(half-conversion, strided transposed-B packing reads one element per cache line; the contiguous pack paths all use widen_append)
        d[i].to_f32()
    }
}

/// Dense matrix multiply `op(a) * op(b)` where `op` optionally transposes.
///
/// Shapes: with `ta = tb = false`, `a` is `m×k`, `b` is `k×n`, result `m×n`.
///
/// # Panics
///
/// Panics if the inner dimensions do not agree.
// lint: entry(panic-reachability)
pub fn gemm(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    let (ar, ac) = (a.rows(), a.cols());
    let (br, bc) = (b.rows(), b.cols());
    let (m, k1) = if ta { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    assert_eq!(
        k1, k2,
        "gemm inner dimension mismatch: {}x{} ({}) @ {}x{} ({})",
        ar, ac, ta, br, bc, tb
    );
    let k = k1;
    let mut out = vec![0.0f32; m * n];
    gemm_into(&mut out, a.data(), b.data(), ta, tb, m, n, k, ac, bc);
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// Half-precision-input, fp32-accumulate GEMM: `op(a) * op(b)` where both
/// operands are packed row-major [`F16`] buffers (`a` is `a_rows×a_cols`
/// physical, likewise `b`).
///
/// Operand panels are widened to `f32` during packing, so the inner
/// micro-kernel, the accumulation precision, and the K summation order are
/// identical to the f32 [`gemm`]: on inputs that are exact halves the result
/// is bitwise identical to `gemm` of the pre-widened tensors. The only error
/// versus an end-to-end f32 computation is the input quantization itself
/// (per-element relative error ≤ 2⁻¹¹; see DESIGN.md's precision policy for
/// the elementwise bound `|C_half − C_f32| ≤ ~2.5·2⁻¹¹·(|A|·|B|)`).
///
/// # Panics
///
/// Panics if a buffer length disagrees with its shape or the inner
/// dimensions do not agree.
// lint: entry(panic-reachability)
pub fn gemm_f16(
    a: &[F16],
    a_rows: usize,
    a_cols: usize,
    b: &[F16],
    b_rows: usize,
    b_cols: usize,
    ta: bool,
    tb: bool,
) -> Tensor {
    assert_eq!(a.len(), a_rows * a_cols, "gemm_f16: a buffer/shape mismatch");
    assert_eq!(b.len(), b_rows * b_cols, "gemm_f16: b buffer/shape mismatch");
    let (m, k1) = if ta { (a_cols, a_rows) } else { (a_rows, a_cols) };
    let (k2, n) = if tb { (b_cols, b_rows) } else { (b_rows, b_cols) };
    assert_eq!(k1, k2, "gemm_f16 inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    gemm_into(&mut out, a, b, ta, tb, m, n, k1, a_cols, b_cols);
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// Mixed-precision GEMM: a packed [`F16`] left operand (typically sliced
/// features) against an `f32` right operand (typically a weight matrix).
/// Same packing-time widening and fp32 accumulation as [`gemm_f16`].
///
/// # Panics
///
/// Panics if the `a` buffer length disagrees with its shape or the inner
/// dimensions do not agree.
// lint: entry(panic-reachability)
pub fn gemm_f16_f32(
    a: &[F16],
    a_rows: usize,
    a_cols: usize,
    b: &Tensor,
    ta: bool,
    tb: bool,
) -> Tensor {
    assert_eq!(a.len(), a_rows * a_cols, "gemm_f16_f32: a buffer/shape mismatch");
    let (br, bc) = (b.rows(), b.cols());
    let (m, k1) = if ta { (a_cols, a_rows) } else { (a_rows, a_cols) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    assert_eq!(k1, k2, "gemm_f16_f32 inner dimension mismatch");
    let mut out = vec![0.0f32; m * n];
    gemm_into(&mut out, a, b.data(), ta, tb, m, n, k1, a_cols, bc);
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// Name of the active GEMM micro-kernel rung — `"avx512"`, `"avx2"`, or
/// `"portable"` — for bench reports. Selection is automatic (CPUID) but can
/// be pinned down-level with `SALIENT_GEMM_KERNEL=portable|avx2|avx512`.
pub fn gemm_kernel_level() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    {
        match simd::level() {
            simd::Level::Avx512 => "avx512",
            simd::Level::Avx2 => "avx2",
            simd::Level::Portable => "portable",
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "portable"
    }
}

/// The seed's scalar triple-loop GEMM, kept as the correctness / performance
/// reference for tests and `BENCH_kernels.json`.
pub fn gemm_naive(a: &Tensor, b: &Tensor, ta: bool, tb: bool) -> Tensor {
    let (ar, ac) = (a.rows(), a.cols());
    let (br, bc) = (b.rows(), b.cols());
    let (m, k1) = if ta { (ac, ar) } else { (ar, ac) };
    let (k2, n) = if tb { (bc, br) } else { (br, bc) };
    assert_eq!(k1, k2, "gemm inner dimension mismatch");
    let k = k1;
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    let at = |i: usize, p: usize| if ta { ad[p * ac + i] } else { ad[i * ac + p] };
    let bt = |p: usize, j: usize| if tb { bd[j * bc + p] } else { bd[p * bc + j] };
    match (ta, tb) {
        (false, false) => {
            for i in 0..m {
                let arow = &ad[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let brow = &bd[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                        *o += av * bv;
                    }
                }
            }
        }
        _ => {
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += at(i, p) * bt(p, j);
                    }
                    out[i * n + j] = acc;
                }
            }
        }
    }
    Tensor::from_vec(out, Shape::matrix(m, n))
}

/// Packs `op(b)[pc..pc+kcb, jc..jc+ncb]` row-major into `bpack`, widening
/// to `f32` as it goes (bulk path for the contiguous `!tb` case).
#[inline]
fn pack_b<TB: GemmElem>(
    bpack: &mut Vec<f32>,
    bd: &[TB],
    tb: bool,
    b_cols: usize,
    pc: usize,
    kcb: usize,
    jc: usize,
    ncb: usize,
) {
    bpack.clear();
    if !tb {
        for p in 0..kcb {
            // lint: allow(panic-reachability, pack and micro-kernel loops index inside shapes asserted at the GEMM entry; hoisted slices keep the checks elidable)
            let row = &bd[(pc + p) * b_cols + jc..(pc + p) * b_cols + jc + ncb];
            TB::widen_append(row, bpack);
        }
    } else {
        // b is n×k physical; op(b)[p][j] = b[j][p].
        for p in 0..kcb {
            for j in 0..ncb {
                bpack.push(TB::at(bd, (jc + j) * b_cols + (pc + p)));
            }
        }
    }
}

/// Packs the A panel, widening to `f32`.
///
/// * `ta = false`: row-major `apack[i][p] = a[i0+i][pc+p]` — contiguous
///   source rows, bulk-widened.
/// * `ta = true`: **K-major** `apack[p][i] = a[pc+p][i0+i]` — also
///   contiguous source rows (this is the transposed-output/backward-pass
///   pack: `a` is k×m physical, so slicing row `pc+p` at columns
///   `i0..i0+mb` is unit-stride). The micro-kernels index
///   `apack[p*mb + i]` for this layout.
#[inline]
fn pack_a<TA: GemmElem>(
    apack: &mut Vec<f32>,
    ad: &[TA],
    ta: bool,
    a_cols: usize,
    i0: usize,
    mb: usize,
    pc: usize,
    kcb: usize,
) {
    apack.clear();
    if !ta {
        for i in 0..mb {
            let row = &ad[(i0 + i) * a_cols + pc..(i0 + i) * a_cols + pc + kcb];
            TA::widen_append(row, apack);
        }
    } else {
        for p in 0..kcb {
            let row = &ad[(pc + p) * a_cols + i0..(pc + p) * a_cols + i0 + mb];
            TA::widen_append(row, apack);
        }
    }
}

/// The packed inner kernel for row-major A panels:
/// `orow[0..ncb] += Σ_p arow[p] * bpack[p][0..ncb]` with the K loop 4-way
/// unrolled so the output row is touched once per four K steps and the
/// j-loop vectorizes to FMA chains.
#[inline]
fn kernel_row(arow: &[f32], bpack: &[f32], orow: &mut [f32], kcb: usize, ncb: usize) {
    debug_assert_eq!(arow.len(), kcb);
    debug_assert_eq!(orow.len(), ncb);
    let mut p = 0;
    while p + 4 <= kcb {
        let a0 = arow[p];
        let a1 = arow[p + 1];
        let a2 = arow[p + 2];
        let a3 = arow[p + 3];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        let b1 = &bpack[(p + 1) * ncb..(p + 1) * ncb + ncb];
        let b2 = &bpack[(p + 2) * ncb..(p + 2) * ncb + ncb];
        let b3 = &bpack[(p + 3) * ncb..(p + 3) * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        p += 4;
    }
    while p < kcb {
        let a0 = arow[p];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j];
        }
        p += 1;
    }
}

/// [`kernel_row`] for K-major A panels (`ta = true`): the A value for row
/// `i` at K step `p` lives at `apack[p*mb + i]`.
#[inline]
fn kernel_row_kmajor(
    apack: &[f32],
    i: usize,
    mb: usize,
    bpack: &[f32],
    orow: &mut [f32],
    kcb: usize,
    ncb: usize,
) {
    debug_assert_eq!(orow.len(), ncb);
    let mut p = 0;
    while p + 4 <= kcb {
        let a0 = apack[p * mb + i];
        let a1 = apack[(p + 1) * mb + i];
        let a2 = apack[(p + 2) * mb + i];
        let a3 = apack[(p + 3) * mb + i];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        let b1 = &bpack[(p + 1) * ncb..(p + 1) * ncb + ncb];
        let b2 = &bpack[(p + 2) * ncb..(p + 2) * ncb + ncb];
        let b3 = &bpack[(p + 3) * ncb..(p + 3) * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
        }
        p += 4;
    }
    while p < kcb {
        let a0 = apack[p * mb + i];
        let b0 = &bpack[p * ncb..p * ncb + ncb];
        for j in 0..ncb {
            orow[j] += a0 * b0[j];
        }
        p += 1;
    }
}

/// The register-tiled micro-kernels, selected at runtime with
/// `is_x86_feature_detected!` so the crate still builds (and falls back to
/// [`kernel_row`]) on the x86-64 baseline target and other architectures.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::*;
    use std::sync::OnceLock;

    /// How many K steps ahead the packed-B panel is prefetched. One K step
    /// reads one `ncb`-float panel row, so this covers ~4·NC·4 B = 4 KiB of
    /// lookahead at full column blocks.
    const PREFETCH_ROWS: usize = 4;

    /// The micro-kernel rung picked for this process.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum Level {
        /// No usable vector unit detected (or forced): [`super::kernel_row`].
        Portable,
        /// AVX2 + FMA 4×16 tile.
        Avx2,
        /// AVX-512F 8×32 tile.
        Avx512,
    }

    /// One-time CPUID probe (overridable down-level with
    /// `SALIENT_GEMM_KERNEL=portable|avx2|avx512` for benches and tests;
    /// an override naming an unsupported rung falls back to detection).
    pub fn level() -> Level {
        static LEVEL: OnceLock<Level> = OnceLock::new();
        *LEVEL.get_or_init(|| {
            let avx2 = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            let avx512 = std::arch::is_x86_feature_detected!("avx512f");
            let auto = if avx512 {
                Level::Avx512
            } else if avx2 {
                Level::Avx2
            } else {
                Level::Portable
            };
            match std::env::var("SALIENT_GEMM_KERNEL").ok().as_deref() {
                Some("portable") => Level::Portable,
                Some("avx2") if avx2 => Level::Avx2,
                Some("avx512") if avx512 => Level::Avx512,
                _ => auto,
            }
        })
    }

    /// Reads the A-panel value for block row `i` at K step `p`, for either
    /// panel layout (row-major `i*kcb + p`, or K-major `p*mb + i` when the
    /// logical A is transposed).
    ///
    /// # Safety
    ///
    /// `apack` must cover `mb×kcb` packed floats with `i < mb`, `p < kcb`.
    #[inline(always)]
    unsafe fn a_elem<const KMAJOR: bool>(
        apack: *const f32,
        i: usize,
        p: usize,
        mb: usize,
        kcb: usize,
    ) -> f32 {
        if KMAJOR {
            *apack.add(p * mb + i)
        } else {
            *apack.add(i * kcb + p)
        }
    }

    /// Prefetches the packed-B panel row `PREFETCH_ROWS` K steps ahead of
    /// `bp`. `wrapping_add` keeps the (possibly past-the-end) hint address
    /// from ever being formed as an out-of-allocation offset, and PREFETCHh
    /// itself never faults.
    #[inline(always)]
    fn prefetch_b(bp: *const f32, ncb: usize) {
        // SAFETY: PREFETCHh is architecturally non-faulting for any address.
        unsafe {
            _mm_prefetch::<_MM_HINT_T0>((bp as *const i8).wrapping_add(PREFETCH_ROWS * ncb * 4))
        }
    }

    /// Mask with the first `rem` (1..=8) lanes enabled, for
    /// `maskload`/`maskstore` on partial column tiles.
    ///
    /// # Safety
    ///
    /// Caller must ensure AVX is available and `rem` is in `1..=8`: the
    /// unaligned load reads 8 lanes starting at `M[8 - rem]`, which stays
    /// inside the 16-entry table only for that range.
    #[target_feature(enable = "avx")]
    unsafe fn tail_mask(rem: usize) -> __m256i {
        const M: [i32; 16] = [-1, -1, -1, -1, -1, -1, -1, -1, 0, 0, 0, 0, 0, 0, 0, 0];
        _mm256_loadu_si256(M.as_ptr().add(8 - rem) as *const __m256i)
    }

    /// `out[0..mb][0..ncb] += apack[mb×kcb] · bpack[kcb×ncb]`, where block
    /// row `i` lives at `out0 + i*n` (AVX2 + FMA rung).
    ///
    /// The main tile is 4 output rows × 16 columns: eight `ymm` accumulators
    /// live in registers across the entire K loop, so each of the two
    /// packed-B vector loads per K step is reused by four FMAs (the 1×N
    /// kernel gets one use per load — this reuse is the entire speedup).
    /// Remainder rows run a 1×16 tile and remainder columns masked ≤8-wide
    /// tiles; every path accumulates fused, in the same K order, so an
    /// output element's value does not depend on how rows were chunked
    /// across threads.
    ///
    /// # Safety
    ///
    /// Caller must check [`level`] ≥ AVX2, and the pointers must cover the
    /// block extents described above (A panel layout per `KMAJOR`).
    #[target_feature(enable = "avx,avx2,fma")]
    pub unsafe fn kernel_block<const KMAJOR: bool>(
        apack: *const f32,
        bpack: *const f32,
        out0: *mut f32,
        n: usize,
        mb: usize,
        kcb: usize,
        ncb: usize,
    ) { // lint: region(no_alloc)
        let mut i = 0;
        while i + 4 <= mb {
            let o0 = out0.add(i * n);
            let o1 = o0.add(n);
            let o2 = o1.add(n);
            let o3 = o2.add(n);
            let mut j = 0;
            while j + 16 <= ncb {
                let mut c00 = _mm256_loadu_ps(o0.add(j));
                let mut c01 = _mm256_loadu_ps(o0.add(j + 8));
                let mut c10 = _mm256_loadu_ps(o1.add(j));
                let mut c11 = _mm256_loadu_ps(o1.add(j + 8));
                let mut c20 = _mm256_loadu_ps(o2.add(j));
                let mut c21 = _mm256_loadu_ps(o2.add(j + 8));
                let mut c30 = _mm256_loadu_ps(o3.add(j));
                let mut c31 = _mm256_loadu_ps(o3.add(j + 8));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b0 = _mm256_loadu_ps(bp);
                    let b1 = _mm256_loadu_ps(bp.add(8));
                    prefetch_b(bp, ncb);
                    let av0 = _mm256_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb));
                    c00 = _mm256_fmadd_ps(av0, b0, c00);
                    c01 = _mm256_fmadd_ps(av0, b1, c01);
                    let av1 = _mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 1, p, mb, kcb));
                    c10 = _mm256_fmadd_ps(av1, b0, c10);
                    c11 = _mm256_fmadd_ps(av1, b1, c11);
                    let av2 = _mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 2, p, mb, kcb));
                    c20 = _mm256_fmadd_ps(av2, b0, c20);
                    c21 = _mm256_fmadd_ps(av2, b1, c21);
                    let av3 = _mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 3, p, mb, kcb));
                    c30 = _mm256_fmadd_ps(av3, b0, c30);
                    c31 = _mm256_fmadd_ps(av3, b1, c31);
                    bp = bp.add(ncb);
                }
                _mm256_storeu_ps(o0.add(j), c00);
                _mm256_storeu_ps(o0.add(j + 8), c01);
                _mm256_storeu_ps(o1.add(j), c10);
                _mm256_storeu_ps(o1.add(j + 8), c11);
                _mm256_storeu_ps(o2.add(j), c20);
                _mm256_storeu_ps(o2.add(j + 8), c21);
                _mm256_storeu_ps(o3.add(j), c30);
                _mm256_storeu_ps(o3.add(j + 8), c31);
                j += 16;
            }
            while j < ncb {
                let rem = (ncb - j).min(8);
                let mask = tail_mask(rem);
                let mut c0 = _mm256_maskload_ps(o0.add(j), mask);
                let mut c1 = _mm256_maskload_ps(o1.add(j), mask);
                let mut c2 = _mm256_maskload_ps(o2.add(j), mask);
                let mut c3 = _mm256_maskload_ps(o3.add(j), mask);
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b = _mm256_maskload_ps(bp, mask);
                    c0 = _mm256_fmadd_ps(_mm256_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb)), b, c0);
                    c1 = _mm256_fmadd_ps(_mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 1, p, mb, kcb)), b, c1);
                    c2 = _mm256_fmadd_ps(_mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 2, p, mb, kcb)), b, c2);
                    c3 = _mm256_fmadd_ps(_mm256_set1_ps(a_elem::<KMAJOR>(apack, i + 3, p, mb, kcb)), b, c3);
                    bp = bp.add(ncb);
                }
                _mm256_maskstore_ps(o0.add(j), mask, c0);
                _mm256_maskstore_ps(o1.add(j), mask, c1);
                _mm256_maskstore_ps(o2.add(j), mask, c2);
                _mm256_maskstore_ps(o3.add(j), mask, c3);
                j += rem;
            }
            i += 4;
        }
        while i < mb {
            let o0 = out0.add(i * n);
            let mut j = 0;
            while j + 16 <= ncb {
                let mut c0 = _mm256_loadu_ps(o0.add(j));
                let mut c1 = _mm256_loadu_ps(o0.add(j + 8));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let av = _mm256_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb));
                    c0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp), c0);
                    c1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(bp.add(8)), c1);
                    bp = bp.add(ncb);
                }
                _mm256_storeu_ps(o0.add(j), c0);
                _mm256_storeu_ps(o0.add(j + 8), c1);
                j += 16;
            }
            while j < ncb {
                let rem = (ncb - j).min(8);
                let mask = tail_mask(rem);
                let mut c = _mm256_maskload_ps(o0.add(j), mask);
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b = _mm256_maskload_ps(bp, mask);
                    c = _mm256_fmadd_ps(_mm256_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb)), b, c);
                    bp = bp.add(ncb);
                }
                _mm256_maskstore_ps(o0.add(j), mask, c);
                j += rem;
            }
            i += 1;
        }
    }

    /// The AVX-512F rung: 8 output rows × 32 columns per tile — sixteen
    /// `zmm` accumulators live in registers across the K loop, so each of
    /// the two packed-B loads per K step feeds eight FMAs. Column tails run
    /// masked ≤16-wide (`__mmask16`) tiles and row tails a 1×32 kernel.
    /// Every path accumulates one FMA per K step per output element in the
    /// same fixed order as the AVX2 rung, so the two rungs (and any row
    /// chunking) produce bitwise-identical results.
    ///
    /// # Safety
    ///
    /// Caller must check [`level`] == AVX-512, and the pointers must cover
    /// the block extents (A panel layout per `KMAJOR`, B panel `kcb×ncb`,
    /// output rows `i < mb` at `out0 + i*n + [0, ncb)`).
    #[target_feature(enable = "avx512f")]
    pub unsafe fn kernel_block_avx512<const KMAJOR: bool>(
        apack: *const f32,
        bpack: *const f32,
        out0: *mut f32,
        n: usize,
        mb: usize,
        kcb: usize,
        ncb: usize,
    ) { // lint: region(no_alloc)
        let mut i = 0;
        while i + 8 <= mb {
            let mut j = 0;
            while j + 32 <= ncb {
                let mut c0 = [_mm512_setzero_ps(); 8];
                let mut c1 = [_mm512_setzero_ps(); 8];
                for r in 0..8 {
                    let o = out0.add((i + r) * n + j);
                    c0[r] = _mm512_loadu_ps(o);
                    c1[r] = _mm512_loadu_ps(o.add(16));
                }
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b0 = _mm512_loadu_ps(bp);
                    let b1 = _mm512_loadu_ps(bp.add(16));
                    prefetch_b(bp, ncb);
                    for r in 0..8 {
                        let av = _mm512_set1_ps(a_elem::<KMAJOR>(apack, i + r, p, mb, kcb));
                        c0[r] = _mm512_fmadd_ps(av, b0, c0[r]);
                        c1[r] = _mm512_fmadd_ps(av, b1, c1[r]);
                    }
                    bp = bp.add(ncb);
                }
                for r in 0..8 {
                    let o = out0.add((i + r) * n + j);
                    _mm512_storeu_ps(o, c0[r]);
                    _mm512_storeu_ps(o.add(16), c1[r]);
                }
                j += 32;
            }
            while j < ncb {
                let rem = (ncb - j).min(16);
                let mask: __mmask16 = ((1u32 << rem) - 1) as __mmask16;
                let mut c = [_mm512_setzero_ps(); 8];
                for r in 0..8 {
                    c[r] = _mm512_maskz_loadu_ps(mask, out0.add((i + r) * n + j));
                }
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let b = _mm512_maskz_loadu_ps(mask, bp);
                    for r in 0..8 {
                        let av = _mm512_set1_ps(a_elem::<KMAJOR>(apack, i + r, p, mb, kcb));
                        c[r] = _mm512_fmadd_ps(av, b, c[r]);
                    }
                    bp = bp.add(ncb);
                }
                for r in 0..8 {
                    _mm512_mask_storeu_ps(out0.add((i + r) * n + j), mask, c[r]);
                }
                j += rem;
            }
            i += 8;
        }
        while i < mb {
            let o0 = out0.add(i * n);
            let mut j = 0;
            while j + 32 <= ncb {
                let mut c0 = _mm512_loadu_ps(o0.add(j));
                let mut c1 = _mm512_loadu_ps(o0.add(j + 16));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let av = _mm512_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb));
                    c0 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bp), c0);
                    c1 = _mm512_fmadd_ps(av, _mm512_loadu_ps(bp.add(16)), c1);
                    bp = bp.add(ncb);
                }
                _mm512_storeu_ps(o0.add(j), c0);
                _mm512_storeu_ps(o0.add(j + 16), c1);
                j += 32;
            }
            while j < ncb {
                let rem = (ncb - j).min(16);
                let mask: __mmask16 = ((1u32 << rem) - 1) as __mmask16;
                let mut c = _mm512_maskz_loadu_ps(mask, o0.add(j));
                let mut bp = bpack.add(j);
                for p in 0..kcb {
                    let av = _mm512_set1_ps(a_elem::<KMAJOR>(apack, i, p, mb, kcb));
                    c = _mm512_fmadd_ps(av, _mm512_maskz_loadu_ps(mask, bp), c);
                    bp = bp.add(ncb);
                }
                _mm512_mask_storeu_ps(o0.add(j), mask, c);
                j += rem;
            }
            i += 1;
        }
    }
}

/// Blocked, packed, parallel GEMM into a pre-zeroed output buffer, generic
/// over the operand element types (`f32` or [`F16`] — see [`GemmElem`]).
///
/// The loop nest is `jc → pc → (parallel over row blocks) → i`; K blocks
/// are accumulated in increasing `pc` order for every output element, so
/// the result is bitwise identical for any thread count.
#[allow(clippy::too_many_arguments)]
fn gemm_into<TA: GemmElem, TB: GemmElem>(
    out: &mut [f32],
    ad: &[TA],
    bd: &[TB],
    ta: bool,
    tb: bool,
    m: usize,
    n: usize,
    k: usize,
    a_cols: usize,
    b_cols: usize,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut bpack = take_f32(KC * NC.min(n));
    let out_ptr = SendPtr(out.as_mut_ptr());
    for jc in (0..n).step_by(NC) {
        let ncb = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kcb = KC.min(k - pc);
            pack_b(&mut bpack, bd, tb, b_cols, pc, kcb, jc, ncb);
            let bp: &[f32] = &bpack;
            let body = |i0: usize, i1: usize| {
                let mb = i1 - i0;
                let mut apack = take_f32(MC * KC);
                pack_a(&mut apack, ad, ta, a_cols, i0, mb, pc, kcb);
                // Row blocks are disjoint in i, so chunks never alias.
                #[cfg(target_arch = "x86_64")]
                {
                    let lvl = simd::level();
                    if lvl != simd::Level::Portable {
                        // SAFETY: `level()` verified the ISA; `out_ptr` spans
                        // the m×n output, rows [i0, i1) are exclusive to this
                        // task, and the packed operands cover mb×kcb (layout
                        // K-major iff `ta`) and kcb×ncb as the kernels
                        // require.
                        unsafe {
                            let out0 = out_ptr.0.add(i0 * n + jc);
                            let (ap, bpp) = (apack.as_ptr(), bp.as_ptr());
                            match (lvl, ta) {
                                (simd::Level::Avx512, false) => {
                                    simd::kernel_block_avx512::<false>(ap, bpp, out0, n, mb, kcb, ncb)
                                }
                                (simd::Level::Avx512, true) => {
                                    simd::kernel_block_avx512::<true>(ap, bpp, out0, n, mb, kcb, ncb)
                                }
                                (_, false) => {
                                    simd::kernel_block::<false>(ap, bpp, out0, n, mb, kcb, ncb)
                                }
                                (_, true) => {
                                    simd::kernel_block::<true>(ap, bpp, out0, n, mb, kcb, ncb)
                                }
                            }
                        }
                        put_f32(apack);
                        return;
                    }
                }
                for i in 0..mb {
                    // SAFETY: output row i0 + i < m and jc + ncb <= n, so
                    // the slice stays inside the output buffer; row blocks
                    // are disjoint across tasks, so it is never aliased.
                    let orow = unsafe { out_ptr.slice_mut((i0 + i) * n + jc, ncb) };
                    if ta {
                        kernel_row_kmajor(&apack, i, mb, bp, orow, kcb, ncb);
                    } else {
                        kernel_row(&apack[i * kcb..(i + 1) * kcb], bp, orow, kcb, ncb);
                    }
                }
                put_f32(apack);
            };
            if 2 * m * ncb * kcb < GEMM_SERIAL_FLOP_CUTOFF {
                body(0, m);
            } else {
                parallel_for(m, MC.min(m), &body);
            }
        }
    }
    put_f32(bpack);
}

// ---------------------------------------------------------------------------
// CSR index over edge lists
// ---------------------------------------------------------------------------

/// Builds a CSR index over `keys` (stable counting sort) and hands
/// `(offsets, order)` to `f`: edge ids with key `d` are
/// `order[offsets[d] as usize .. offsets[d + 1] as usize]`, in their
/// original edge-list order. The two index buffers live in thread-local
/// scratch, so steady-state calls allocate nothing.
pub(crate) fn with_csr<R>(
    keys: &[u32],
    n_keys: usize,
    f: impl FnOnce(&[u32], &[u32]) -> R,
) -> R {
    let mut offsets = take_u32(n_keys + 1);
    let mut order = take_u32(keys.len());
    offsets.resize(n_keys + 1, 0);
    for &d in keys {
        offsets[d as usize + 1] += 1;
    }
    for i in 0..n_keys {
        offsets[i + 1] += offsets[i];
    }
    order.resize(keys.len(), 0);
    let mut cursor = take_u32(n_keys);
    cursor.extend_from_slice(&offsets[..n_keys]);
    for (e, &d) in keys.iter().enumerate() {
        let c = &mut cursor[d as usize];
        order[*c as usize] = e as u32;
        *c += 1;
    }
    put_u32(cursor);
    let r = f(&offsets, &order);
    put_u32(offsets);
    put_u32(order);
    r
}

/// Minimum output rows per parallel chunk for aggregation kernels.
const AGG_MIN_CHUNK: usize = 16;
/// Serial cutoff: below this many edge·column products the pool dispatch
/// overhead dominates.
const AGG_SERIAL_CUTOFF: usize = 1 << 14;

/// `out[i] = x[idx[i]]` — parallel row gather.
// lint: entry(panic-reachability)
pub fn gather_rows_forward(xd: &[f32], cols: usize, idx: &[u32]) -> Vec<f32> {
    let mut out = vec![0.0f32; idx.len() * cols];
    if idx.len() * cols < AGG_SERIAL_CUTOFF {
        for (e, &i) in idx.iter().enumerate() {
            out[e * cols..(e + 1) * cols]
                .copy_from_slice(&xd[i as usize * cols..(i as usize + 1) * cols]);
        }
        return out;
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(idx.len(), AGG_MIN_CHUNK, &|e0, e1| {
        // SAFETY: `out` has idx.len()·cols elements and parallel_for hands
        // each task a disjoint [e0, e1) row range, so the slice is in
        // bounds and unaliased.
        let orows = unsafe { out_ptr.slice_mut(e0 * cols, (e1 - e0) * cols) };
        for (e, orow) in (e0..e1).zip(orows.chunks_exact_mut(cols)) {
            if e + 1 < e1 {
                prefetch_read(xd.as_ptr().wrapping_add(idx[e + 1] as usize * cols));
            }
            let i = idx[e] as usize;
            orow.copy_from_slice(&xd[i * cols..(i + 1) * cols]);
        }
    });
    out
}

/// `out[i] = widen(x[idx[i]])` — parallel row gather over a packed [`F16`]
/// feature buffer with the f16→f32 widening fused into the copy (bulk F16C
/// per row). This is the half-precision transfer path: a consumer gathers
/// binary16 rows — half the bytes of the f32 gather — and pays the (cheap,
/// vectorized) widen exactly once.
// lint: entry(panic-reachability)
pub fn gather_rows_forward_f16(xd: &[F16], cols: usize, idx: &[u32]) -> Vec<f32> {
    let mut out = vec![0.0f32; idx.len() * cols];
    if idx.len() * cols < AGG_SERIAL_CUTOFF {
        for (e, &i) in idx.iter().enumerate() {
            crate::f16::widen_into(
                &xd[i as usize * cols..(i as usize + 1) * cols],
                &mut out[e * cols..(e + 1) * cols],
            );
        }
        return out;
    }
    let out_ptr = SendPtr(out.as_mut_ptr());
    parallel_for(idx.len(), AGG_MIN_CHUNK, &|e0, e1| {
        // SAFETY: `out` has idx.len()·cols elements and parallel_for hands
        // each task a disjoint [e0, e1) row range, so the slice is in
        // bounds and unaliased.
        let orows = unsafe { out_ptr.slice_mut(e0 * cols, (e1 - e0) * cols) };
        for (e, orow) in (e0..e1).zip(orows.chunks_exact_mut(cols)) {
            if e + 1 < e1 {
                prefetch_read(xd.as_ptr().wrapping_add(idx[e + 1] as usize * cols));
            }
            let i = idx[e] as usize;
            crate::f16::widen_into(&xd[i * cols..(i + 1) * cols], orow);
        }
    });
    out
}

/// Backward of [`gather_rows_forward`]: scatter-adds each gradient row `e`
/// into `dx[idx[e]]`. Parallelized by *destination* row via a CSR index so
/// no two tasks write the same row and the per-row reduction order is
/// fixed (bitwise deterministic for any thread count).
///
/// # Panics
///
/// Panics if `gd.len() != idx.len() * cols`.
// lint: entry(panic-reachability)
pub fn gather_rows_backward(gd: &[f32], cols: usize, idx: &[u32], n_src: usize) -> Vec<f32> {
    assert_eq!(gd.len(), idx.len() * cols, "gather_rows_backward shape mismatch");
    let mut dx = vec![0.0f32; n_src * cols];
    if cols == 0 {
        return dx;
    }
    with_csr(idx, n_src, |offsets, order| {
        let dx_ptr = SendPtr(dx.as_mut_ptr());
        let body = |r0: usize, r1: usize| {
            // SAFETY: `dx` has n_src·cols elements and tasks receive
            // disjoint destination-row ranges [r0, r1) ⊆ [0, n_src), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { dx_ptr.slice_mut(r0 * cols, (r1 - r0) * cols) };
            for (r, drow) in (r0..r1).zip(rows.chunks_exact_mut(cols)) {
                let edges = &order[offsets[r] as usize..offsets[r + 1] as usize];
                for (ei, &e) in edges.iter().enumerate() {
                    if ei + 1 < edges.len() {
                        prefetch_read(gd.as_ptr().wrapping_add(edges[ei + 1] as usize * cols));
                    }
                    // SAFETY: `with_csr` yields edge ids e < idx.len(), and
                    // gd.len() == idx.len()·cols was asserted on entry.
                    let grow = unsafe { gd.get_unchecked(e as usize * cols..(e as usize + 1) * cols) };
                    for (d, &v) in drow.iter_mut().zip(grow) {
                        *d += v;
                    }
                }
            }
        };
        if idx.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_src);
        } else {
            parallel_for(n_src, AGG_MIN_CHUNK, &body);
        }
    });
    dx
}

/// Fused CSR scatter-aggregation: for each destination `d`,
/// `out[d] = reduce { x[s] : (s, d) ∈ edges }` where the reduction is a sum,
/// optionally scaled by `1 / weight[d]` in the same pass (mean), all inside
/// one task per destination-row chunk.
///
/// `dst_weight`: `None` for sum (GIN), `Some(counts)` for mean (SAGE).
///
/// Edge endpoints are validated once up front (`src.len() == dst.len()`,
/// every source row inside `xd`), so the per-edge loop reads rows unchecked
/// and prefetches the next edge's source row — the per-edge slice-check
/// overhead this removes is what the sequential gather kernel never paid.
// lint: entry(panic-reachability)
pub fn scatter_reduce_forward(
    xd: &[f32],
    cols: usize,
    src: &[u32],
    dst: &[u32],
    n_dst: usize,
    dst_weight: Option<&[f32]>,
) -> Vec<f32> {
    assert_eq!(src.len(), dst.len(), "scatter edge lists must pair up");
    let mut out = vec![0.0f32; n_dst * cols];
    if cols == 0 {
        return out;
    }
    let n_rows = xd.len() / cols;
    assert!(
        src.iter().all(|&s| (s as usize) < n_rows),
        "scatter source row out of range"
    );
    with_csr(dst, n_dst, |offsets, order| {
        let out_ptr = SendPtr(out.as_mut_ptr());
        // lint: region(no_alloc)
        let body = |d0: usize, d1: usize| {
            // SAFETY: `out` has n_dst·cols elements and tasks receive
            // disjoint destination-row ranges [d0, d1) ⊆ [0, n_dst), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { out_ptr.slice_mut(d0 * cols, (d1 - d0) * cols) };
            for (d, orow) in (d0..d1).zip(rows.chunks_exact_mut(cols)) {
                let edges = &order[offsets[d] as usize..offsets[d + 1] as usize];
                for (ei, &e) in edges.iter().enumerate() {
                    if ei + 1 < edges.len() {
                        // SAFETY: edge ids from `with_csr` are < dst.len()
                        // == src.len(); source rows were validated < n_rows.
                        let nxt = unsafe { *src.get_unchecked(edges[ei + 1] as usize) } as usize;
                        prefetch_read(xd.as_ptr().wrapping_add(nxt * cols));
                    }
                    // SAFETY: e < src.len() (CSR over dst, lengths asserted
                    // equal) and src rows were validated < n_rows = the row
                    // count of `xd`, so the row slice is in bounds.
                    let xrow = unsafe {
                        let s = *src.get_unchecked(e as usize) as usize;
                        xd.get_unchecked(s * cols..(s + 1) * cols)
                    };
                    for (o, &v) in orow.iter_mut().zip(xrow) {
                        *o += v;
                    }
                }
                if let Some(w) = dst_weight {
                    let c = w[d];
                    if c > 0.0 {
                        let inv = 1.0 / c;
                        for o in orow.iter_mut() {
                            *o *= inv;
                        }
                    }
                }
            }
        };
        if src.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_dst);
        } else {
            parallel_for(n_dst, AGG_MIN_CHUNK, &body);
        }
    });
    out
}

/// Backward of [`scatter_reduce_forward`]: routes `g[dst]` (scaled by
/// `1 / weight[dst]` for mean) back to each source row. Parallelized by
/// source row via a CSR index over `src` — again write-disjoint and
/// order-deterministic, with the same validate-once / unchecked-per-edge
/// row reads as the forward pass.
// lint: entry(panic-reachability)
pub fn scatter_reduce_backward(
    gd: &[f32],
    cols: usize,
    src: &[u32],
    dst: &[u32],
    n_src: usize,
    dst_weight: Option<&[f32]>,
) -> Vec<f32> {
    assert_eq!(src.len(), dst.len(), "scatter edge lists must pair up");
    let mut dx = vec![0.0f32; n_src * cols];
    if cols == 0 {
        return dx;
    }
    let n_rows = gd.len() / cols;
    assert!(
        dst.iter().all(|&d| (d as usize) < n_rows),
        "scatter destination row out of range"
    );
    if let Some(w) = dst_weight {
        assert!(w.len() >= n_rows, "dst_weight shorter than gradient rows");
    }
    with_csr(src, n_src, |offsets, order| {
        let dx_ptr = SendPtr(dx.as_mut_ptr());
        // lint: region(no_alloc)
        let body = |s0: usize, s1: usize| {
            // SAFETY: `dx` has n_src·cols elements and tasks receive
            // disjoint source-row ranges [s0, s1) ⊆ [0, n_src), so the
            // slice is in bounds and unaliased.
            let rows = unsafe { dx_ptr.slice_mut(s0 * cols, (s1 - s0) * cols) };
            for (s, drow) in (s0..s1).zip(rows.chunks_exact_mut(cols)) {
                let edges = &order[offsets[s] as usize..offsets[s + 1] as usize];
                for (ei, &e) in edges.iter().enumerate() {
                    if ei + 1 < edges.len() {
                        // SAFETY: edge ids from `with_csr` are < src.len()
                        // == dst.len(); dst rows were validated < n_rows.
                        let nxt = unsafe { *dst.get_unchecked(edges[ei + 1] as usize) } as usize;
                        prefetch_read(gd.as_ptr().wrapping_add(nxt * cols));
                    }
                    // SAFETY: e < dst.len() (CSR over src, lengths asserted
                    // equal); dst rows validated < n_rows = gd row count, and
                    // dst_weight (when present) covers n_rows entries.
                    let (d, grow) = unsafe {
                        let d = *dst.get_unchecked(e as usize) as usize;
                        (d, gd.get_unchecked(d * cols..(d + 1) * cols))
                    };
                    match dst_weight {
                        Some(w) => {
                            // SAFETY: d < n_rows ≤ w.len(), asserted above.
                            let inv = 1.0 / unsafe { *w.get_unchecked(d) };
                            for (x, &v) in drow.iter_mut().zip(grow) {
                                *x += inv * v;
                            }
                        }
                        None => {
                            for (x, &v) in drow.iter_mut().zip(grow) {
                                *x += v;
                            }
                        }
                    }
                }
            }
        };
        if src.len() * cols < AGG_SERIAL_CUTOFF {
            body(0, n_src);
        } else {
            parallel_for(n_src, AGG_MIN_CHUNK, &body);
        }
    });
    dx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
        Tensor::from_vec(
            (0..r * c).map(|_| rng.random_range(-2.0f32..2.0)).collect(),
            Shape::matrix(r, c),
        )
    }

    fn max_rel_diff(a: &Tensor, b: &Tensor) -> f32 {
        a.data()
            .iter()
            .zip(b.data())
            .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    #[test]
    fn blocked_gemm_matches_naive_over_random_shapes() {
        let mut rng = StdRng::seed_from_u64(0xB10C);
        for case in 0..60 {
            let m = rng.random_range(1usize..90);
            let k = rng.random_range(1usize..90);
            let n = rng.random_range(1usize..90);
            let (ta, tb) = (case % 2 == 1, (case / 2) % 2 == 1);
            let a = if ta { rand_tensor(k, m, &mut rng) } else { rand_tensor(m, k, &mut rng) };
            let b = if tb { rand_tensor(n, k, &mut rng) } else { rand_tensor(k, n, &mut rng) };
            let fast = gemm(&a, &b, ta, tb);
            let slow = gemm_naive(&a, &b, ta, tb);
            let diff = max_rel_diff(&fast, &slow);
            assert!(
                diff < 1e-4,
                "case {case} ({m}x{k}x{n}, ta={ta}, tb={tb}): rel diff {diff}"
            );
        }
    }

    #[test]
    fn blocked_gemm_exercises_multiple_blocks() {
        // Shapes straddling the MC/KC/NC boundaries.
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(MC + 3, KC + 5, NC + 1), (2 * MC, 2 * KC, 7), (1, KC * 2 + 3, NC)] {
            let a = rand_tensor(m, k, &mut rng);
            let b = rand_tensor(k, n, &mut rng);
            let diff = max_rel_diff(&gemm(&a, &b, false, false), &gemm_naive(&a, &b, false, false));
            assert!(diff < 1e-4, "{m}x{k}x{n}: rel diff {diff}");
        }
    }

    #[test]
    fn transposed_a_kmajor_path_straddles_blocks() {
        // The K-major A pack (backward-pass dW = Aᵀ·g shape) across multiple
        // MC/KC blocks, against the naive reference.
        let mut rng = StdRng::seed_from_u64(11);
        for (m, k, n) in [(MC + 5, KC + 9, 33), (2 * MC + 1, KC / 2 + 3, NC + 7)] {
            let a = rand_tensor(k, m, &mut rng); // physical k×m, ta = true
            let b = rand_tensor(k, n, &mut rng);
            let diff = max_rel_diff(&gemm(&a, &b, true, false), &gemm_naive(&a, &b, true, false));
            assert!(diff < 1e-4, "{m}x{k}x{n} (ta): rel diff {diff}");
        }
    }

    #[test]
    fn gemm_f16_is_bitwise_equal_to_f32_gemm_on_widened_inputs() {
        // Packing widens F16 panels to f32 before any arithmetic, so on
        // inputs that are exact halves the half-input GEMM must agree with
        // the f32 GEMM of the pre-widened matrices *bitwise*, for all four
        // transpose variants.
        let mut rng = StdRng::seed_from_u64(0xF16);
        for case in 0..16 {
            let m = rng.random_range(1usize..80);
            let k = rng.random_range(1usize..80);
            let n = rng.random_range(1usize..80);
            let (ta, tb) = (case % 2 == 1, (case / 2) % 2 == 1);
            let (ar, ac) = if ta { (k, m) } else { (m, k) };
            let (br, bc) = if tb { (n, k) } else { (k, n) };
            let ah: Vec<F16> = (0..ar * ac)
                .map(|_| F16::from_f32(rng.random_range(-2.0f32..2.0)))
                .collect();
            let bh: Vec<F16> = (0..br * bc)
                .map(|_| F16::from_f32(rng.random_range(-2.0f32..2.0)))
                .collect();
            let aw = Tensor::from_vec(ah.iter().map(|h| h.to_f32()).collect(), Shape::matrix(ar, ac));
            let bw = Tensor::from_vec(bh.iter().map(|h| h.to_f32()).collect(), Shape::matrix(br, bc));
            let half = gemm_f16(&ah, ar, ac, &bh, br, bc, ta, tb);
            let full = gemm(&aw, &bw, ta, tb);
            assert_eq!(
                half.data(),
                full.data(),
                "case {case} ({m}x{k}x{n}, ta={ta}, tb={tb})"
            );
        }
    }

    #[test]
    fn gemm_f16_f32_mixed_matches_widened() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(m, k, n, ta, tb) in
            &[(40, 33, 25, false, false), (33, 40, 25, true, false), (40, 33, 25, false, true)]
        {
            let (ar, ac) = if ta { (k, m) } else { (m, k) };
            let ah: Vec<F16> = (0..ar * ac)
                .map(|_| F16::from_f32(rng.random_range(-2.0f32..2.0)))
                .collect();
            let aw = Tensor::from_vec(ah.iter().map(|h| h.to_f32()).collect(), Shape::matrix(ar, ac));
            let b = if tb { rand_tensor(n, k, &mut rng) } else { rand_tensor(k, n, &mut rng) };
            let mixed = gemm_f16_f32(&ah, ar, ac, &b, ta, tb);
            let full = gemm(&aw, &b, ta, tb);
            assert_eq!(mixed.data(), full.data(), "{m}x{k}x{n} ta={ta} tb={tb}");
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    fn micro_kernel_rungs_agree() {
        // Drive each micro-kernel directly on the same packed panels. The
        // AVX2 and AVX-512 rungs accumulate one FMA per K step per element
        // in the same order, so they must agree *bitwise*; the portable
        // kernel groups four products per step, so it gets a tolerance.
        let avx2 = std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma");
        let avx512 = std::arch::is_x86_feature_detected!("avx512f");
        if !avx2 {
            return;
        }
        let mut rng = StdRng::seed_from_u64(0xAB5);
        let (mb, kcb, ncb) = (13, 37, 41); // odd sizes exercise all tails
        let n = ncb;
        let apack: Vec<f32> = (0..mb * kcb).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let bpack: Vec<f32> = (0..kcb * ncb).map(|_| rng.random_range(-1.0f32..1.0)).collect();

        let mut portable = vec![0.0f32; mb * n];
        for i in 0..mb {
            kernel_row(
                &apack[i * kcb..(i + 1) * kcb],
                &bpack,
                &mut portable[i * n..(i + 1) * n],
                kcb,
                ncb,
            );
        }

        let mut out2 = vec![0.0f32; mb * n];
        // SAFETY: AVX2+FMA detected above; panels cover mb×kcb (row-major)
        // and kcb×ncb; the output buffer covers mb rows of stride n.
        unsafe {
            simd::kernel_block::<false>(apack.as_ptr(), bpack.as_ptr(), out2.as_mut_ptr(), n, mb, kcb, ncb);
        }
        for (p, v) in portable.iter().zip(out2.iter()) {
            assert!((p - v).abs() <= p.abs().max(1.0) * 1e-5, "avx2 vs portable: {p} vs {v}");
        }

        if avx512 {
            let mut out5 = vec![0.0f32; mb * n];
            // SAFETY: AVX-512F detected above; same panel/output extents.
            unsafe {
                simd::kernel_block_avx512::<false>(
                    apack.as_ptr(),
                    bpack.as_ptr(),
                    out5.as_mut_ptr(),
                    n,
                    mb,
                    kcb,
                    ncb,
                );
            }
            assert_eq!(out2, out5, "avx512 must be bitwise identical to avx2");
        }

        // K-major layout: repack A transposed and check both rungs agree
        // with the row-major result bitwise (same values, same FMA order).
        let mut akm = vec![0.0f32; mb * kcb];
        for i in 0..mb {
            for p in 0..kcb {
                akm[p * mb + i] = apack[i * kcb + p];
            }
        }
        let mut outk = vec![0.0f32; mb * n];
        // SAFETY: AVX2+FMA detected above; K-major panel covers kcb×mb.
        unsafe {
            simd::kernel_block::<true>(akm.as_ptr(), bpack.as_ptr(), outk.as_mut_ptr(), n, mb, kcb, ncb);
        }
        assert_eq!(out2, outk, "k-major avx2 must match row-major bitwise");
        if avx512 {
            let mut outk5 = vec![0.0f32; mb * n];
            // SAFETY: AVX-512F detected above; K-major panel covers kcb×mb.
            unsafe {
                simd::kernel_block_avx512::<true>(
                    akm.as_ptr(),
                    bpack.as_ptr(),
                    outk5.as_mut_ptr(),
                    n,
                    mb,
                    kcb,
                    ncb,
                );
            }
            assert_eq!(out2, outk5, "k-major avx512 must match row-major bitwise");
        }
    }

    #[test]
    fn csr_index_is_stable_and_complete() {
        let keys = [2u32, 0, 2, 1, 0, 2];
        with_csr(&keys, 4, |offsets, order| {
            assert_eq!(offsets, &[0, 2, 3, 6, 6]);
            // Stability: edge ids with equal keys keep edge-list order.
            assert_eq!(&order[0..2], &[1, 4]); // key 0
            assert_eq!(&order[2..3], &[3]); // key 1
            assert_eq!(&order[3..6], &[0, 2, 5]); // key 2
        });
    }

    #[test]
    fn scatter_kernels_match_serial_edge_walk() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n_src = rng.random_range(1usize..200);
            let n_dst = rng.random_range(1usize..150);
            let cols = rng.random_range(1usize..40);
            let n_edges = rng.random_range(0usize..800);
            let src: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
            let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
            let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();

            // Reference: naive edge walk.
            let mut expect = vec![0.0f32; n_dst * cols];
            for (&s, &d) in src.iter().zip(&dst) {
                for c in 0..cols {
                    expect[d as usize * cols + c] += x[s as usize * cols + c];
                }
            }
            let got = scatter_reduce_forward(&x, cols, &src, &dst, n_dst, None);
            for (g, e) in got.iter().zip(&expect) {
                assert!((g - e).abs() < 1e-4, "scatter_add mismatch");
            }
        }
    }

    #[test]
    #[should_panic(expected = "source row out of range")]
    fn scatter_forward_validates_source_rows() {
        // The unchecked per-edge reads depend on this up-front validation.
        let x = vec![0.0f32; 4]; // 2 rows × 2 cols
        scatter_reduce_forward(&x, 2, &[5], &[0], 1, None);
    }

    #[test]
    fn parallel_and_serial_chunking_are_bitwise_identical() {
        // The determinism claim: because each output row is reduced in CSR
        // edge order inside exactly one chunk, chunk boundaries (and hence
        // thread count) cannot change the result. Compare the pool-parallel
        // path against a forced single-chunk evaluation of the same kernel.
        let mut rng = StdRng::seed_from_u64(99);
        let n_src = 500;
        let n_dst = 300;
        let cols = 64; // big enough to clear AGG_SERIAL_CUTOFF
        let n_edges = 4000;
        let src: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_src as u32)).collect();
        let dst: Vec<u32> = (0..n_edges).map(|_| rng.random_range(0..n_dst as u32)).collect();
        let x: Vec<f32> = (0..n_src * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let mut counts = vec![0.0f32; n_dst];
        for &d in &dst {
            counts[d as usize] += 1.0;
        }

        let parallel = scatter_reduce_forward(&x, cols, &src, &dst, n_dst, Some(&counts));
        // Serial reference with the *identical* per-row reduction.
        let mut serial = vec![0.0f32; n_dst * cols];
        with_csr(&dst, n_dst, |offsets, order| {
            for d in 0..n_dst {
                let orow = &mut serial[d * cols..(d + 1) * cols];
                for &e in &order[offsets[d] as usize..offsets[d + 1] as usize] {
                    let s = src[e as usize] as usize;
                    for (o, &v) in orow.iter_mut().zip(&x[s * cols..(s + 1) * cols]) {
                        *o += v;
                    }
                }
                if counts[d] > 0.0 {
                    let inv = 1.0 / counts[d];
                    for o in orow.iter_mut() {
                        *o *= inv;
                    }
                }
            }
        });
        assert_eq!(parallel, serial, "bitwise determinism across chunkings");

        let g: Vec<f32> = (0..n_dst * cols).map(|_| rng.random_range(-1.0f32..1.0)).collect();
        let parallel_bwd =
            scatter_reduce_backward(&g, cols, &src, &dst, n_src, Some(&counts));
        let mut serial_bwd = vec![0.0f32; n_src * cols];
        with_csr(&src, n_src, |offsets, order| {
            for s in 0..n_src {
                let drow = &mut serial_bwd[s * cols..(s + 1) * cols];
                for &e in &order[offsets[s] as usize..offsets[s + 1] as usize] {
                    let d = dst[e as usize] as usize;
                    let inv = 1.0 / counts[d];
                    for (o, &v) in drow.iter_mut().zip(&g[d * cols..(d + 1) * cols]) {
                        *o += inv * v;
                    }
                }
            }
        });
        assert_eq!(parallel_bwd, serial_bwd);
    }

    #[test]
    fn gather_forward_and_backward() {
        let x: Vec<f32> = (0..6).map(|v| v as f32).collect(); // 3 rows × 2 cols
        let idx = [2u32, 0, 2];
        let out = gather_rows_forward(&x, 2, &idx);
        assert_eq!(out, vec![4.0, 5.0, 0.0, 1.0, 4.0, 5.0]);
        let g = vec![1.0f32; 6];
        let dx = gather_rows_backward(&g, 2, &idx, 3);
        assert_eq!(dx, vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn gather_f16_matches_widened_f32_gather() {
        let mut rng = StdRng::seed_from_u64(33);
        // Both below and above AGG_SERIAL_CUTOFF to cover serial + parallel.
        for (rows, cols, picks) in [(50, 17, 40), (400, 64, 2000)] {
            let xh: Vec<F16> = (0..rows * cols)
                .map(|_| F16::from_f32(rng.random_range(-4.0f32..4.0)))
                .collect();
            let xw: Vec<f32> = xh.iter().map(|h| h.to_f32()).collect();
            let idx: Vec<u32> = (0..picks).map(|_| rng.random_range(0..rows as u32)).collect();
            let half = gather_rows_forward_f16(&xh, cols, &idx);
            let full = gather_rows_forward(&xw, cols, &idx);
            assert_eq!(half, full, "{rows}x{cols}, {picks} picks");
        }
    }

    #[test]
    fn gemm_determinism_across_repeated_calls() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = rand_tensor(300, 500, &mut rng);
        let b = rand_tensor(500, 200, &mut rng);
        let first = gemm(&a, &b, false, false);
        for _ in 0..3 {
            assert_eq!(first.data(), gemm(&a, &b, false, false).data());
        }
    }
}
