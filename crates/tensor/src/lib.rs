//! # salient-tensor
//!
//! A small, dependency-light dense tensor engine with reverse-mode automatic
//! differentiation, built as the compute substrate for the SALIENT
//! reproduction (the role PyTorch plays in the original paper).
//!
//! The crate provides:
//!
//! * [`Tensor`] — dense, row-major, reference-counted `f32` storage;
//! * [`F16`] — IEEE 754 binary16 for host-side feature storage (the paper
//!   keeps features in half precision to halve slicing/transfer bytes);
//! * [`Tape`] / [`Var`] — a per-batch autograd tape recording elementwise,
//!   linear-algebra, and message-passing (gather/scatter) operations;
//! * [`Param`] — trainable parameters with stable identities, usable across
//!   tapes and threads;
//! * [`optim`] — SGD and Adam;
//! * [`init`] — Glorot/Kaiming/normal initializers;
//! * [`kernels`] — the CPU performance layer: cache-blocked parallel GEMM
//!   and fused CSR gather/scatter aggregation;
//! * [`pool`] — the std-only work-sharing thread pool those kernels run on
//!   (sized by `SALIENT_NUM_THREADS` or the machine's parallelism);
//! * [`rng`] — the workspace's dependency-free xoshiro256** RNG;
//! * [`sync`] — poison-tolerant lock helpers for hot-path modules that must
//!   survive a recovered worker panic.
//!
//! # Example
//!
//! ```
//! use salient_tensor::{init, optim::{Adam, Optimizer}, Param, Tape, Tensor};
//! use salient_tensor::rng::StdRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut w = Param::new("w", init::glorot_uniform(2, 2, &mut rng));
//! let mut opt = Adam::new(1e-2);
//!
//! for _ in 0..10 {
//!     let tape = Tape::new();
//!     let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
//!     let y = x.matmul(&tape.param(&w)).log_softmax();
//!     let loss = y.nll_loss(&[0, 1]);
//!     w.zero_grad();
//!     tape.backward(&loss).apply_to([&mut w]);
//!     opt.step(std::iter::once(&mut w));
//! }
//! ```

#![warn(missing_docs)]

mod autograd;
mod f16;
mod graph_ops;
mod norm;
mod ops;
mod shape;
mod tensor;

pub mod init;
pub mod kernels;
pub mod optim;
pub mod pool;
pub mod rng;
pub mod schedule;
pub mod sync;

pub use autograd::{Gradients, Param, ParamId, Tape, Var};
pub use f16::{dequantize_into, narrow_into, quantize, widen_into, Dtype, F16};
pub use kernels::{gemm, gemm_f16, gemm_f16_f32, gemm_naive};
pub use norm::column_stats;
pub use shape::Shape;
pub use tensor::Tensor;
