//! Batch normalization over the row dimension (PyTorch `BatchNorm1d`).

use crate::autograd::{Node, Var};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Per-column mean and (biased) variance of a rank-2 tensor.
///
/// # Panics
///
/// Panics if the tensor has zero rows.
pub fn column_stats(x: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let (rows, cols) = (x.rows(), x.cols());
    assert!(rows > 0, "column_stats of empty batch");
    let mut mean = vec![0.0f32; cols];
    for r in 0..rows {
        for (m, v) in mean.iter_mut().zip(x.row(r).iter()) {
            *m += v;
        }
    }
    let inv_n = 1.0 / rows as f32;
    for m in &mut mean {
        *m *= inv_n;
    }
    let mut var = vec![0.0f32; cols];
    for r in 0..rows {
        for ((v, &x), &m) in var.iter_mut().zip(x.row(r).iter()).zip(mean.iter()) {
            let d = x - m;
            *v += d * d;
        }
    }
    for v in &mut var {
        *v *= inv_n;
    }
    (mean, var)
}

impl Var {
    /// Training-mode batch normalization: normalizes each column by the batch
    /// statistics and applies the affine transform `γ·x̂ + β`.
    ///
    /// Returns the output along with the batch mean and biased variance so
    /// the calling layer can update its running statistics.
    ///
    /// The backward pass uses the full batch-norm gradient (the batch
    /// statistics are treated as functions of the input).
    ///
    /// # Panics
    ///
    /// Panics if `gamma`/`beta` are not length-`cols` vectors or the batch is
    /// empty.
    pub fn batch_norm_train(
        &self,
        gamma: &Var,
        beta: &Var,
        eps: f32,
    ) -> (Var, Vec<f32>, Vec<f32>) {
        self.same_tape(gamma);
        self.same_tape(beta);
        let x = self.value();
        let (rows, cols) = (x.rows(), x.cols());
        let g = gamma.value();
        let b = beta.value();
        assert_eq!(g.len(), cols, "gamma must have one entry per column");
        assert_eq!(b.len(), cols, "beta must have one entry per column");
        let (mean, var) = column_stats(&x);
        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();

        let mut xhat = vec![0.0f32; rows * cols];
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let xrow = x.row(r);
            for c in 0..cols {
                // lint: allow(panic-reachability, per-row slices are cols long by the asserted input shape and c < cols is the loop bound)
                let h = (xrow[c] - mean[c]) * inv_std[c];
                xhat[r * cols + c] = h;
                out[r * cols + c] = g.data()[c] * h + b.data()[c];
            }
        }
        let xhat = Tensor::from_vec(xhat, Shape::matrix(rows, cols));
        let (ix, ig, ib) = (self.id, gamma.id, beta.id);
        let gamma_v = g.clone();
        let inv_std_saved = inv_std.clone();
        let xhat_saved = xhat.clone();
        let out = self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(rows, cols)),
            backward: Some(Box::new(move |gout| {
                let n = rows as f32;
                let god = gout.data();
                let xh = xhat_saved.data();
                // Column reductions: Σg and Σ(g·x̂).
                let mut sum_g = vec![0.0f32; cols];
                let mut sum_gx = vec![0.0f32; cols];
                for r in 0..rows {
                    for c in 0..cols {
                        let v = god[r * cols + c];
                        sum_g[c] += v;
                        sum_gx[c] += v * xh[r * cols + c];
                    }
                }
                let mut dx = vec![0.0f32; rows * cols];
                for r in 0..rows {
                    for c in 0..cols {
                        let i = r * cols + c;
                        dx[i] = gamma_v.data()[c] * inv_std_saved[c] / n
                            * (n * god[i] - sum_g[c] - xh[i] * sum_gx[c]);
                    }
                }
                vec![
                    (ix, Tensor::from_vec(dx, Shape::matrix(rows, cols))),
                    (ig, Tensor::from_vec(sum_gx, Shape::vector(cols))),
                    (ib, Tensor::from_vec(sum_g, Shape::vector(cols))),
                ]
            })),
            param: None,
        });
        (out, mean, var)
    }

    /// Evaluation-mode batch normalization using fixed running statistics
    /// (which are treated as constants by the backward pass).
    ///
    /// # Panics
    ///
    /// Panics if the statistic vectors are not length-`cols`.
    pub fn batch_norm_eval(
        &self,
        gamma: &Var,
        beta: &Var,
        running_mean: &[f32],
        running_var: &[f32],
        eps: f32,
    ) -> Var {
        self.same_tape(gamma);
        self.same_tape(beta);
        let x = self.value();
        let (rows, cols) = (x.rows(), x.cols());
        assert_eq!(running_mean.len(), cols, "running mean length mismatch");
        assert_eq!(running_var.len(), cols, "running var length mismatch");
        let g = gamma.value();
        let b = beta.value();
        let inv_std: Vec<f32> = running_var.iter().map(|v| 1.0 / (v + eps).sqrt()).collect();
        let mut xhat = vec![0.0f32; rows * cols];
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let xrow = x.row(r);
            for c in 0..cols {
                let h = (xrow[c] - running_mean[c]) * inv_std[c];
                xhat[r * cols + c] = h;
                out[r * cols + c] = g.data()[c] * h + b.data()[c];
            }
        }
        let (ix, ig, ib) = (self.id, gamma.id, beta.id);
        let gamma_v = g.clone();
        let xhat = Tensor::from_vec(xhat, Shape::matrix(rows, cols));
        self.tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(rows, cols)),
            backward: Some(Box::new(move |gout| {
                let god = gout.data();
                let xh = xhat.data();
                let mut sum_g = vec![0.0f32; cols];
                let mut sum_gx = vec![0.0f32; cols];
                let mut dx = vec![0.0f32; rows * cols];
                for r in 0..rows {
                    for c in 0..cols {
                        let i = r * cols + c;
                        sum_g[c] += god[i];
                        sum_gx[c] += god[i] * xh[i];
                        dx[i] = god[i] * gamma_v.data()[c] * inv_std[c];
                    }
                }
                vec![
                    (ix, Tensor::from_vec(dx, Shape::matrix(rows, cols))),
                    (ig, Tensor::from_vec(sum_gx, Shape::vector(cols))),
                    (ib, Tensor::from_vec(sum_g, Shape::vector(cols))),
                ]
            })),
            param: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;

    #[test]
    fn column_stats_basic() {
        let x = Tensor::from_vec(vec![1.0, 10.0, 3.0, 20.0], [2, 2]);
        let (m, v) = column_stats(&x);
        assert_eq!(m, vec![2.0, 15.0]);
        assert_eq!(v, vec![1.0, 25.0]);
    }

    #[test]
    fn train_output_is_normalized() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [3, 2]));
        let g = tape.constant(Tensor::ones([2]));
        let b = tape.constant(Tensor::zeros([2]));
        let (y, mean, var) = x.batch_norm_train(&g, &b, 1e-5);
        assert_eq!(mean, vec![3.0, 4.0]);
        let yv = y.value();
        let (m2, v2) = column_stats(&yv);
        for c in 0..2 {
            assert!(m2[c].abs() < 1e-5, "normalized mean ~0");
            assert!((v2[c] - 1.0).abs() < 1e-3, "normalized var ~1, got {}", v2[c]);
            assert!(var[c] > 0.0);
        }
    }

    #[test]
    fn affine_params_receive_gradients() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]));
        let g = tape.constant(Tensor::ones([2]));
        let b = tape.constant(Tensor::zeros([2]));
        let (y, _, _) = x.batch_norm_train(&g, &b, 1e-5);
        let grads = tape.backward(&y.sum_all());
        // dβ = Σ g_out = rows per column.
        assert_eq!(grads.wrt(&b).unwrap().data(), &[2.0, 2.0]);
        // dγ = Σ g_out · x̂; x̂ sums to zero per column.
        let dg = grads.wrt(&g).unwrap();
        assert!(dg.data().iter().all(|v| v.abs() < 1e-4));
    }

    #[test]
    fn train_gradient_matches_numeric() {
        let x0 = [0.5f32, -1.0, 2.0, 0.3, 1.1, -0.4];
        let loss_of = |xs: &[f32]| {
            let tape = Tape::new();
            let x = tape.constant(Tensor::from_vec(xs.to_vec(), [3, 2]));
            let g = tape.constant(Tensor::from_vec(vec![1.5, 0.5], [2]));
            let b = tape.constant(Tensor::from_vec(vec![0.1, -0.2], [2]));
            let (y, _, _) = x.batch_norm_train(&g, &b, 1e-5);
            let loss = y.mul(&y).sum_all();
            (tape, x, loss)
        };
        let (tape, x, loss) = loss_of(&x0);
        let grads = tape.backward(&loss);
        let analytic = grads.wrt(&x).unwrap().clone();
        let eps = 1e-3;
        for i in 0..x0.len() {
            let mut xp = x0;
            xp[i] += eps;
            let mut xm = x0;
            xm[i] -= eps;
            let up = loss_of(&xp).2.value().item();
            let down = loss_of(&xm).2.value().item();
            let numeric = (up - down) / (2.0 * eps);
            assert!(
                (analytic.data()[i] - numeric).abs() < 2e-2,
                "element {i}: analytic {} vs numeric {}",
                analytic.data()[i],
                numeric
            );
        }
    }

    #[test]
    fn eval_mode_uses_running_stats() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(vec![10.0, 20.0], [1, 2]));
        let g = tape.constant(Tensor::ones([2]));
        let b = tape.constant(Tensor::zeros([2]));
        let y = x.batch_norm_eval(&g, &b, &[10.0, 10.0], &[4.0, 4.0], 0.0);
        let yv = y.value();
        assert!((yv.data()[0] - 0.0).abs() < 1e-6);
        assert!((yv.data()[1] - 5.0).abs() < 1e-6);
    }
}
