//! Differentiable tensor operations recorded on the autograd [`Tape`].
//!
//! Every method on [`Var`] appends a node whose backward closure produces the
//! gradient contributions for its parents. Raw (non-differentiable) kernels
//! such as [`gemm`] live in [`crate::kernels`] and are re-exported here for
//! optimizer / communication code.

use crate::autograd::{Node, Var};
use crate::shape::Shape;
use crate::tensor::Tensor;
use crate::rng::Rng;

pub use crate::kernels::gemm;

/// Broadcasts `grad` (shape `r×c`) down to `shape` by summing over rows when
/// `shape` is a row vector / scalar. Used by the backward pass of broadcast
/// addition.
fn reduce_to_shape(grad: &Tensor, shape: &Shape) -> Tensor {
    if grad.shape() == shape {
        return grad.clone();
    }
    if shape.rank() == 0 {
        return Tensor::scalar(grad.sum());
    }
    // Sum over rows into a single row of `shape.len()` columns.
    let cols = shape.len();
    assert_eq!(grad.cols(), cols, "broadcast reduce mismatch");
    let mut out = vec![0.0f32; cols];
    for r in 0..grad.rows() {
        for (o, v) in out.iter_mut().zip(grad.row(r).iter()) {
            *o += v;
        }
    }
    Tensor::from_vec(out, shape.clone())
}

/// Adds `b` (same shape, row vector, or scalar) to every row of `a`.
fn broadcast_add(a: &Tensor, b: &Tensor) -> Tensor {
    if a.shape() == b.shape() {
        return a.zip(b, |x, y| x + y);
    }
    assert!(
        a.shape().broadcasts_with(b.shape()),
        "cannot broadcast {} onto {}",
        b.shape(),
        a.shape()
    );
    if b.shape().rank() == 0 {
        let s = b.item();
        return a.map(|x| x + s);
    }
    let cols = a.cols();
    let mut out = a.data().to_vec();
    let bd = b.data();
    for r in 0..a.rows() {
        // lint: allow(panic-reachability, row ranges are bounded by the asserted rows*cols buffer lengths)
        for (o, v) in out[r * cols..(r + 1) * cols].iter_mut().zip(bd.iter()) {
            *o += v;
        }
    }
    Tensor::from_vec(out, a.shape().clone())
}

impl Var {
    /// Matrix product `self @ rhs`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree or the vars are on different
    /// tapes.
    pub fn matmul(&self, rhs: &Var) -> Var {
        self.same_tape(rhs);
        let a = self.value();
        let b = rhs.value();
        let out = gemm(&a, &b, false, false);
        let (ia, ib) = (self.id, rhs.id);
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, gemm(g, &b, false, true)), (ib, gemm(&a, g, true, false))]
            })),
            param: None,
        })
    }

    /// Elementwise / broadcast addition. `rhs` may have the same shape, be a
    /// row vector matching `self`'s columns (bias), or a scalar.
    pub fn add(&self, rhs: &Var) -> Var {
        self.same_tape(rhs);
        let a = self.value();
        let b = rhs.value();
        let out = broadcast_add(&a, &b);
        let (ia, ib) = (self.id, rhs.id);
        let bshape = b.shape().clone();
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.clone()), (ib, reduce_to_shape(g, &bshape))]
            })),
            param: None,
        })
    }

    /// Elementwise subtraction (same shapes only).
    pub fn sub(&self, rhs: &Var) -> Var {
        self.same_tape(rhs);
        let out = self.value().zip(&rhs.value(), |x, y| x - y);
        let (ia, ib) = (self.id, rhs.id);
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                let mut neg = g.clone();
                neg.scale(-1.0);
                vec![(ia, g.clone()), (ib, neg)]
            })),
            param: None,
        })
    }

    /// Elementwise product (same shapes only).
    pub fn mul(&self, rhs: &Var) -> Var {
        self.same_tape(rhs);
        let a = self.value();
        let b = rhs.value();
        let out = a.zip(&b, |x, y| x * y);
        let (ia, ib) = (self.id, rhs.id);
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.zip(&b, |gv, bv| gv * bv)), (ib, g.zip(&a, |gv, av| gv * av))]
            })),
            param: None,
        })
    }

    /// Multiplication by a compile-time constant scalar.
    pub fn scale(&self, c: f32) -> Var {
        let out = self.value().map(|x| x * c);
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| vec![(ia, g.map(|gv| gv * c))])),
            param: None,
        })
    }

    /// Rectified linear unit.
    pub fn relu(&self) -> Var {
        let a = self.value();
        let out = a.map(|x| x.max(0.0));
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.zip(&a, |gv, av| if av > 0.0 { gv } else { 0.0 }))]
            })),
            param: None,
        })
    }

    /// Leaky rectified linear unit with negative-side `slope`.
    pub fn leaky_relu(&self, slope: f32) -> Var {
        let a = self.value();
        let out = a.map(|x| if x > 0.0 { x } else { slope * x });
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(
                    ia,
                    g.zip(&a, |gv, av| if av > 0.0 { gv } else { slope * gv }),
                )]
            })),
            param: None,
        })
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let out = self.value().map(|x| 1.0 / (1.0 + (-x).exp()));
        let ia = self.id;
        let saved = out.clone();
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.zip(&saved, |gv, s| gv * s * (1.0 - s)))]
            })),
            param: None,
        })
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let out = self.value().map(f32::tanh);
        let ia = self.id;
        let saved = out.clone();
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.zip(&saved, |gv, t| gv * (1.0 - t * t)))]
            })),
            param: None,
        })
    }

    /// Inverted dropout: during training each element is zeroed with
    /// probability `p` and survivors are scaled by `1/(1-p)`; at inference it
    /// is the identity.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn dropout(&self, p: f32, training: bool, rng: &mut impl Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability {p} not in [0,1)");
        if !training || p == 0.0 {
            let ia = self.id;
            return self.tape().push(Node {
                value: self.value(),
                backward: Some(Box::new(move |g| vec![(ia, g.clone())])),
                param: None,
            });
        }
        let a = self.value();
        let keep = 1.0 - p;
        let mask: Vec<f32> = (0..a.len())
            .map(|_| if rng.random::<f32>() < keep { 1.0 / keep } else { 0.0 })
            .collect();
        let mask = Tensor::from_vec(mask, a.shape().clone());
        let out = a.zip(&mask, |x, m| x * m);
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                vec![(ia, g.zip(&mask, |gv, m| gv * m))]
            })),
            param: None,
        })
    }

    /// Row-wise log-softmax (numerically stabilized by the row max).
    pub fn log_softmax(&self) -> Var {
        let a = self.value();
        let (rows, cols) = (a.rows(), a.cols());
        let mut out = vec![0.0f32; rows * cols];
        for r in 0..rows {
            let row = a.row(r);
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|x| (x - m).exp()).sum::<f32>().ln() + m;
            for (o, &x) in out[r * cols..(r + 1) * cols].iter_mut().zip(row.iter()) {
                *o = x - lse;
            }
        }
        let out = Tensor::from_vec(out, a.shape().clone());
        let saved = out.clone();
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                // d log_softmax: g - softmax * sum_row(g)
                let (rows, cols) = (saved.rows(), saved.cols());
                let mut dx = vec![0.0f32; rows * cols];
                for r in 0..rows {
                    let grow = g.row(r);
                    let srow = saved.row(r);
                    let gsum: f32 = grow.iter().sum();
                    for c in 0..cols {
                        dx[r * cols + c] = grow[c] - srow[c].exp() * gsum;
                    }
                }
                vec![(ia, Tensor::from_vec(dx, saved.shape().clone()))]
            })),
            param: None,
        })
    }

    /// Mean negative log likelihood of `targets` given row-wise
    /// log-probabilities (the output of [`Var::log_softmax`]).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != self.rows()` or a target is out of range.
    pub fn nll_loss(&self, targets: &[usize]) -> Var {
        let a = self.value();
        let (rows, cols) = (a.rows(), a.cols());
        assert_eq!(targets.len(), rows, "one target per row required");
        let mut loss = 0.0f32;
        for (r, &t) in targets.iter().enumerate() {
            assert!(t < cols, "target {t} out of range for {cols} classes");
            loss -= a.row(r)[t];
        }
        loss /= rows.max(1) as f32;
        let ia = self.id;
        let targets = targets.to_vec();
        let shape = a.shape().clone();
        self.tape().push(Node {
            value: Tensor::scalar(loss),
            backward: Some(Box::new(move |g| {
                let scale = g.item() / targets.len().max(1) as f32;
                let mut dx = vec![0.0f32; shape.len()];
                let cols = shape.cols();
                for (r, &t) in targets.iter().enumerate() {
                    dx[r * cols + t] = -scale;
                }
                vec![(ia, Tensor::from_vec(dx, shape.clone()))]
            })),
            param: None,
        })
    }

    /// Sum of all elements, as a scalar variable.
    pub fn sum_all(&self) -> Var {
        let a = self.value();
        let ia = self.id;
        let shape = a.shape().clone();
        self.tape().push(Node {
            value: Tensor::scalar(a.sum()),
            backward: Some(Box::new(move |g| {
                vec![(ia, Tensor::full(shape.clone(), g.item()))]
            })),
            param: None,
        })
    }

    /// Mean of all elements, as a scalar variable.
    pub fn mean_all(&self) -> Var {
        let n = self.value().len().max(1) as f32;
        self.sum_all().scale(1.0 / n)
    }

    /// Reinterprets the value with a new shape (same element count).
    ///
    /// # Panics
    ///
    /// Panics if element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Var {
        let a = self.value();
        let old_shape = a.shape().clone();
        let out = a.reshape(shape);
        let ia = self.id;
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| vec![(ia, g.reshape(old_shape.clone()))])),
            param: None,
        })
    }

    /// Flattens to a rank-1 vector.
    pub fn reshape_vector(&self) -> Var {
        let n = self.value().len();
        self.reshape([n])
    }

    /// Keeps the first `k` rows (PyG's `x[:k]` target slice).
    ///
    /// # Panics
    ///
    /// Panics if `k` exceeds the number of rows.
    pub fn narrow_rows(&self, k: usize) -> Var {
        let a = self.value();
        let out = a.narrow_rows(k);
        let ia = self.id;
        let (rows, cols) = (a.rows(), a.cols());
        self.tape().push(Node {
            value: out,
            backward: Some(Box::new(move |g| {
                let mut dx = vec![0.0f32; rows * cols];
                dx[..k * cols].copy_from_slice(g.data());
                vec![(ia, Tensor::from_vec(dx, Shape::matrix(rows, cols)))]
            })),
            param: None,
        })
    }

    /// Concatenates `vars` along columns (dim 1). All operands must have the
    /// same number of rows.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is empty or row counts differ.
    pub fn concat_cols(vars: &[Var]) -> Var {
        assert!(!vars.is_empty(), "concat_cols of no tensors");
        for w in &vars[1..] {
            vars[0].same_tape(w);
        }
        let tensors: Vec<Tensor> = vars.iter().map(|v| v.value()).collect();
        let rows = tensors[0].rows();
        for t in &tensors {
            assert_eq!(t.rows(), rows, "concat_cols row mismatch");
        }
        let widths: Vec<usize> = tensors.iter().map(|t| t.cols()).collect();
        let total: usize = widths.iter().sum();
        let mut out = vec![0.0f32; rows * total];
        for r in 0..rows {
            let mut off = 0;
            for (t, &w) in tensors.iter().zip(widths.iter()) {
                out[r * total + off..r * total + off + w].copy_from_slice(t.row(r));
                off += w;
            }
        }
        let ids: Vec<usize> = vars.iter().map(|v| v.id).collect();
        vars[0].tape().push(Node {
            value: Tensor::from_vec(out, Shape::matrix(rows, total)),
            backward: Some(Box::new(move |g| {
                let mut contributions = Vec::with_capacity(ids.len());
                let total: usize = widths.iter().sum();
                let mut off = 0;
                for (&id, &w) in ids.iter().zip(widths.iter()) {
                    let mut dx = vec![0.0f32; rows * w];
                    for r in 0..rows {
                        dx[r * w..(r + 1) * w]
                            .copy_from_slice(&g.data()[r * total + off..r * total + off + w]);
                    }
                    contributions.push((id, Tensor::from_vec(dx, Shape::matrix(rows, w))));
                    off += w;
                }
                contributions
            })),
            param: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::autograd::Tape;

    fn t(data: &[f32], shape: impl Into<Shape>) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape)
    }

    #[test]
    fn gemm_all_transpose_combinations() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], [3, 2]);
        let c = gemm(&a, &b, false, false);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);

        let at = t(&[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], [3, 2]); // a^T
        assert_eq!(gemm(&at, &b, true, false).data(), c.data());

        let bt = t(&[7.0, 9.0, 11.0, 8.0, 10.0, 12.0], [2, 3]); // b^T
        assert_eq!(gemm(&a, &bt, false, true).data(), c.data());
        assert_eq!(gemm(&at, &bt, true, true).data(), c.data());
    }

    #[test]
    #[should_panic(expected = "inner dimension")]
    fn gemm_dim_mismatch_panics() {
        gemm(&Tensor::zeros([2, 3]), &Tensor::zeros([2, 3]), false, false);
    }

    #[test]
    fn matmul_gradients() {
        let tape = Tape::new();
        let a = tape.constant(t(&[1.0, 2.0, 3.0, 4.0], [2, 2]));
        let b = tape.constant(t(&[5.0, 6.0, 7.0, 8.0], [2, 2]));
        let y = a.matmul(&b).sum_all();
        let g = tape.backward(&y);
        // d/dA (sum AB) = ones @ B^T
        assert_eq!(g.wrt(&a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        assert_eq!(g.wrt(&b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn bias_broadcast_add_reduces_grad() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::zeros([3, 2]));
        let bias = tape.constant(t(&[1.0, 2.0], [2]));
        let y = x.add(&bias).sum_all();
        let g = tape.backward(&y);
        assert_eq!(g.wrt(&bias).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn scalar_broadcast_add() {
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([2, 2]));
        let s = tape.constant(Tensor::scalar(10.0));
        let y = x.add(&s);
        assert_eq!(y.value().data(), &[11.0; 4]);
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&s).unwrap().item(), 4.0);
    }

    #[test]
    fn relu_and_leaky_relu_grads() {
        let tape = Tape::new();
        let x = tape.constant(t(&[-1.0, 2.0], [2]));
        let g = tape.backward(&x.relu().sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[0.0, 1.0]);

        let tape = Tape::new();
        let x = tape.constant(t(&[-1.0, 2.0], [2]));
        let g = tape.backward(&x.leaky_relu(0.1).sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[0.1, 1.0]);
    }

    #[test]
    fn log_softmax_rows_sum_to_one_in_prob_space() {
        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 2.0, 3.0, -1.0, 0.0, 1.0], [2, 3]));
        let ls = x.log_softmax().value();
        for r in 0..2 {
            let p: f32 = ls.row(r).iter().map(|v| v.exp()).sum();
            assert!((p - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn nll_loss_matches_manual() {
        let tape = Tape::new();
        let x = tape.constant(t(&[0.0, 1.0, 0.5, 2.0], [2, 2]));
        let ls = x.log_softmax();
        let loss = ls.nll_loss(&[1, 0]);
        let manual = {
            let v = ls.value();
            -(v.row(0)[1] + v.row(1)[0]) / 2.0
        };
        assert!((loss.value().item() - manual).abs() < 1e-6);
    }

    #[test]
    fn softmax_nll_grad_is_p_minus_onehot() {
        let tape = Tape::new();
        let x = tape.constant(t(&[0.2, -0.3, 0.5], [1, 3]));
        let ls = x.log_softmax();
        let loss = ls.nll_loss(&[2]);
        let g = tape.backward(&loss);
        let probs: Vec<f32> = ls.value().row(0).iter().map(|v| v.exp()).collect();
        let gx = g.wrt(&x).unwrap();
        for c in 0..3 {
            let expect = probs[c] - if c == 2 { 1.0 } else { 0.0 };
            assert!((gx.row(0)[c] - expect).abs() < 1e-5, "class {c}");
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let mut rng = crate::rng::rng();
        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 2.0, 3.0], [3]));
        let y = x.dropout(0.5, false, &mut rng);
        assert_eq!(y.value().data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropout_train_preserves_expectation_roughly() {
        let mut rng = crate::rng::StdRng::seed_from_u64(7);
        let tape = Tape::new();
        let x = tape.constant(Tensor::ones([10_000]));
        let y = x.dropout(0.5, true, &mut rng).value();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps mean, got {mean}");
    }

    #[test]
    fn concat_and_narrow_roundtrip_grads() {
        let tape = Tape::new();
        let a = tape.constant(t(&[1.0, 2.0], [1, 2]));
        let b = tape.constant(t(&[3.0], [1, 1]));
        let c = Var::concat_cols(&[a.clone(), b.clone()]);
        assert_eq!(c.value().data(), &[1.0, 2.0, 3.0]);
        let g = tape.backward(&c.scale(2.0).sum_all());
        assert_eq!(g.wrt(&a).unwrap().data(), &[2.0, 2.0]);
        assert_eq!(g.wrt(&b).unwrap().data(), &[2.0]);

        let tape = Tape::new();
        let x = tape.constant(t(&[1.0, 2.0, 3.0, 4.0], [2, 2]));
        let y = x.narrow_rows(1);
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&x).unwrap().data(), &[1.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn sub_and_mul_grads() {
        let tape = Tape::new();
        let a = tape.constant(t(&[3.0], [1]));
        let b = tape.constant(t(&[2.0], [1]));
        let y = a.sub(&b).mul(&a); // (a-b)*a = a^2 - ab
        let g = tape.backward(&y.sum_all());
        assert_eq!(g.wrt(&a).unwrap().item(), 2.0 * 3.0 - 2.0);
        assert_eq!(g.wrt(&b).unwrap().item(), -3.0);
    }

    #[test]
    fn sigmoid_tanh_grads_match_numeric() {
        let check = |f: &dyn Fn(&Var) -> Var, x0: f32| {
            let tape = Tape::new();
            let x = tape.constant(Tensor::scalar(x0));
            let y = f(&x);
            let g = tape.backward(&y);
            let analytic = g.wrt(&x).unwrap().item();
            let eps = 1e-3;
            let tape2 = Tape::new();
            let y1 = f(&tape2.constant(Tensor::scalar(x0 + eps))).value().item();
            let y0 = f(&tape2.constant(Tensor::scalar(x0 - eps))).value().item();
            let numeric = (y1 - y0) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 1e-3,
                "analytic {analytic} vs numeric {numeric}"
            );
        };
        check(&|v| v.sigmoid(), 0.3);
        check(&|v| v.tanh(), -0.7);
    }
}
