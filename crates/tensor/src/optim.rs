//! First-order optimizers operating on [`Param`]s.

use crate::autograd::{Param, ParamId};
use crate::tensor::Tensor;
use std::collections::HashMap;

/// An optimizer updates parameter values from their accumulated gradients.
///
/// Matching the reference workflow of Listing 1 in the paper
/// (`optimizer.zero_grad(); loss.backward(); optimizer.step()`), a training
/// step is: zero gradients, run backward, [`Optimizer::step`].
pub trait Optimizer {
    /// Applies one update to every parameter using its current `.grad()` and
    /// leaves the gradient untouched (call [`zero_grads`] afterwards or
    /// before the next backward).
    fn step<'a>(&mut self, params: impl Iterator<Item = &'a mut Param>)
    where
        Self: Sized;

    /// The current learning rate.
    fn learning_rate(&self) -> f32;

    /// Changes the learning rate (e.g. for warmup or decay schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Zeroes the gradient of every parameter.
pub fn zero_grads<'a>(params: impl Iterator<Item = &'a mut Param>) {
    for p in params {
        p.zero_grad();
    }
}

/// Plain stochastic gradient descent with optional momentum and weight decay.
///
/// # Examples
///
/// ```
/// use salient_tensor::{optim::{Optimizer, Sgd}, Param, Tensor};
///
/// let mut p = Param::new("w", Tensor::scalar(1.0));
/// p.accumulate_grad(&Tensor::scalar(0.5));
/// let mut opt = Sgd::new(0.1);
/// opt.step(std::iter::once(&mut p));
/// assert!((p.value().item() - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: HashMap<ParamId, Tensor>,
}

impl Sgd {
    /// Creates SGD with the given learning rate and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            velocity: HashMap::new(),
        }
    }

    /// Sets the momentum coefficient.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets decoupled L2 weight decay.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }
}

impl Optimizer for Sgd {
    fn step<'a>(&mut self, params: impl Iterator<Item = &'a mut Param>) {
        for p in params {
            let mut g = p.grad().clone();
            if self.weight_decay != 0.0 {
                g.axpy(self.weight_decay, p.value());
            }
            if self.momentum != 0.0 {
                let v = self
                    .velocity
                    .entry(p.id())
                    .or_insert_with(|| Tensor::zeros(g.shape().clone()));
                v.scale(self.momentum);
                v.axpy(1.0, &g);
                g = v.clone();
            }
            p.value_mut().axpy(-self.lr, &g);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba, 2015), the paper's optimizer of choice.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: i32,
    m: HashMap<ParamId, Tensor>,
    v: HashMap<ParamId, Tensor>,
}

impl Adam {
    /// Creates Adam with standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: HashMap::new(),
            v: HashMap::new(),
        }
    }

    /// Overrides the exponential decay rates.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Sets L2 weight decay added to the gradient (PyTorch `Adam` semantics).
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> i32 {
        self.t
    }
}

impl Optimizer for Adam {
    fn step<'a>(&mut self, params: impl Iterator<Item = &'a mut Param>) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        for p in params {
            let mut g = p.grad().clone();
            if self.weight_decay != 0.0 {
                g.axpy(self.weight_decay, p.value());
            }
            let m = self
                .m
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(g.shape().clone()));
            let v = self
                .v
                .entry(p.id())
                .or_insert_with(|| Tensor::zeros(g.shape().clone()));
            m.scale(self.beta1);
            m.axpy(1.0 - self.beta1, &g);
            {
                let vd = v.data_mut();
                for (vv, gg) in vd.iter_mut().zip(g.data().iter()) {
                    *vv = self.beta2 * *vv + (1.0 - self.beta2) * gg * gg;
                }
            }
            let lr = self.lr;
            let eps = self.eps;
            let value = p.value_mut();
            let vd = v.data();
            let md = m.data();
            let dst = value.data_mut();
            for ((w, &mm), &vv) in dst.iter_mut().zip(md.iter()).zip(vd.iter()) {
                let mhat = mm / bc1;
                let vhat = vv / bc2;
                *w -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(p: &Param) -> Tensor {
        // d/dw (w - 3)^2 = 2 (w - 3)
        p.value().map(|w| 2.0 * (w - 3.0))
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new("w", Tensor::scalar(0.0));
        let mut opt = Sgd::new(0.1);
        for _ in 0..100 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(std::iter::once(&mut p));
        }
        assert!((p.value().item() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut p = Param::new("w", Tensor::scalar(0.0));
            let mut opt = Sgd::new(0.01).with_momentum(momentum);
            for _ in 0..50 {
                p.zero_grad();
                let g = quadratic_grad(&p);
                p.accumulate_grad(&g);
                opt.step(std::iter::once(&mut p));
            }
            (p.value().item() - 3.0).abs()
        };
        assert!(run(0.9) < run(0.0), "momentum should move farther on a smooth bowl");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut p = Param::new("w", Tensor::scalar(10.0));
        let mut opt = Adam::new(0.2);
        for _ in 0..300 {
            p.zero_grad();
            let g = quadratic_grad(&p);
            p.accumulate_grad(&g);
            opt.step(std::iter::once(&mut p));
        }
        assert!((p.value().item() - 3.0).abs() < 1e-2, "got {}", p.value().item());
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut p = Param::new("w", Tensor::scalar(1.0));
        let mut opt = Sgd::new(0.1).with_weight_decay(0.5);
        // Zero task gradient: only decay acts.
        opt.step(std::iter::once(&mut p));
        assert!((p.value().item() - 0.95).abs() < 1e-6);
    }

    #[test]
    fn learning_rate_is_adjustable() {
        let mut opt = Adam::new(0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }
}
