//! A std-only work-sharing thread pool for the CPU kernel layer.
//!
//! One process-wide pool (lazily created, reused across calls) executes
//! data-parallel kernels: a job is a closure over a chunk index, and workers
//! pull chunk indices from a shared atomic counter until the range is
//! exhausted. This is the classic "self-scheduling" loop — the same dynamic
//! load balancing SALIENT's batch-prep queue uses (§4.2), applied at the
//! kernel level — so an unlucky chunk (e.g. a high-degree destination range
//! in a scatter) does not stall the other workers.
//!
//! Sizing: `SALIENT_NUM_THREADS` if set, else
//! `std::thread::available_parallelism()`. A size of 1 runs every job inline
//! on the caller with zero synchronization, which — together with kernels
//! that partition *output* rows disjointly — makes 1-thread and N-thread
//! results bitwise identical.
//!
//! Safety: jobs borrow caller data. The submitting thread participates in
//! the job and does not return until every worker has retired the job, so
//! the erased `'static` borrow handed to workers never outlives the call.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// A borrowed parallel job: closure plus the chunk range to cover.
struct Job {
    /// Type-erased `&(dyn Fn(usize) + Sync)` with the lifetime erased.
    task: *const (dyn Fn(usize) + Sync),
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// One-past-last chunk index.
    n_chunks: usize,
    /// The first caught chunk panic's payload; the submitter re-raises it
    /// so `panic::catch_unwind` callers see the original message, not a
    /// generic pool error.
    panic_payload: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: the raw `task` pointer is only dereferenced while the submitting
// call frame is alive (`run` blocks until every worker finishes the job),
// and the pointee is `Sync`, so sharing the pointer across threads is sound.
unsafe impl Send for Job {}
// SAFETY: see the Send justification above — shared access is read-only
// through a `Sync` pointee.
unsafe impl Sync for Job {}

struct PoolState {
    /// Monotone job sequence number; bumped on submit.
    epoch: u64,
    /// The current job, if one is active.
    job: Option<std::sync::Arc<Job>>,
}

/// The process-wide kernel thread pool.
pub struct ThreadPool {
    threads: usize,
    state: Mutex<PoolState>,
    /// Signals workers that a new job epoch exists.
    work_cv: Condvar,
    /// Counts workers still inside the current job; the submitter waits on
    /// this reaching zero.
    active: AtomicUsize,
    done_lock: Mutex<()>,
    done_cv: Condvar,
    /// Serializes submissions (one job at a time).
    submit: Mutex<()>,
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("SALIENT_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Recovers a poisoned lock. Every critical section in this pool is a
/// plain field assignment, and chunk panics are caught inside `drain`, so
/// a poisoned mutex carries no broken invariant — take the guard and go.
/// This keeps the whole kernel dispatch path free of panicking constructs.
fn relock<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

static POOL: OnceLock<&'static ThreadPool> = OnceLock::new();

/// The process-wide pool, created on first use.
pub fn global() -> &'static ThreadPool {
    *POOL.get_or_init(|| ThreadPool::new(configured_threads()))
}

/// Number of threads the global pool runs (including the caller).
pub fn num_threads() -> usize {
    global().threads()
}

impl ThreadPool {
    /// Builds a pool that executes jobs on `threads` threads total: the
    /// submitting thread plus `threads - 1` persistent workers.
    fn new(threads: usize) -> &'static ThreadPool {
        let pool = Box::leak(Box::new(ThreadPool {
            threads: threads.max(1),
            state: Mutex::new(PoolState { epoch: 0, job: None }),
            work_cv: Condvar::new(),
            active: AtomicUsize::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
        }));
        for w in 1..pool.threads {
            let p: &'static ThreadPool = pool;
            std::thread::Builder::new()
                .name(format!("salient-kernel-{w}"))
                .spawn(move || p.worker_loop())
                // lint: allow(panic-reachability, workers spawn once at pool creation; spawn failure is unrecoverable resource exhaustion)
                .expect("failed to spawn kernel worker");
        }
        pool
    }

    /// Total threads participating in jobs (workers + submitter).
    pub fn threads(&self) -> usize {
        self.threads
    }

    fn worker_loop(&'static self) {
        let mut seen_epoch = 0u64;
        loop {
            let job = {
                let mut st = relock(self.state.lock());
                loop {
                    if st.epoch != seen_epoch {
                        if let Some(job) = st.job.clone() {
                            seen_epoch = st.epoch;
                            break job;
                        }
                        seen_epoch = st.epoch;
                    }
                    st = relock(self.work_cv.wait(st));
                }
            };
            self.drain(&job);
            // Last participant out signals the submitter.
            if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _g = relock(self.done_lock.lock());
                self.done_cv.notify_all();
            }
        }
    }

    /// Claims and runs chunks until the job's range is exhausted. A panic in
    /// a chunk is caught (so the pool's accounting stays consistent), its
    /// payload stashed, and re-raised on the submitting thread.
    fn drain(&self, job: &Job) {
        // SAFETY: `job.task` was erased from a live borrow in `run`, which
        // does not return until this job completes, so the pointee outlives
        // every dereference here.
        let task = unsafe { &*job.task };
        loop {
            // Chunk claiming only needs each index handed out once and
            // publishes nothing, so relaxed ordering is sufficient.
            let i = job.next.fetch_add(1, Ordering::Relaxed);
            if i >= job.n_chunks {
                return;
            }
            if let Err(payload) =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i)))
            {
                // Poison the job: skip remaining chunks fast. Keep the first
                // payload (later racers lose) for the submitter to re-raise.
                // Relaxed: the store is an optimization hint; stragglers
                // that miss it merely run extra chunks.
                job.next.store(job.n_chunks, Ordering::Relaxed);
                let mut slot = relock(job.panic_payload.lock());
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
        }
    }

    /// Runs `task(chunk)` for every `chunk in 0..n_chunks`, distributing
    /// chunks dynamically over the pool. Returns when all chunks are done.
    ///
    /// The closure must partition writes disjointly by chunk index; with
    /// that discipline results are identical for any thread count.
    pub fn run(&'static self, n_chunks: usize, task: &(dyn Fn(usize) + Sync)) {
        if n_chunks == 0 {
            return;
        }
        if self.threads == 1 || n_chunks == 1 {
            for i in 0..n_chunks {
                task(i);
            }
            return;
        }
        let _submit = relock(self.submit.lock());
        // SAFETY: the transmute only erases the borrow's lifetime; workers
        // dereference it exclusively between job publication below and the
        // completion wait at the end of this call, while `task` is borrowed.
        let erased: *const (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<_, &'static (dyn Fn(usize) + Sync)>(task) };
        let job = std::sync::Arc::new(Job {
            task: erased,
            next: AtomicUsize::new(0),
            n_chunks,
            panic_payload: Mutex::new(None),
        });
        // Every worker participates in every job epoch (a worker finding the
        // chunk counter already exhausted just signs off); this keeps the
        // `active` accounting exact without per-worker handshakes.
        self.active.store(self.threads, Ordering::Release);
        {
            let mut st = relock(self.state.lock());
            st.epoch += 1;
            st.job = Some(std::sync::Arc::clone(&job));
            self.work_cv.notify_all();
        }
        // The submitter is a participant too.
        self.drain(&job);
        if self.active.fetch_sub(1, Ordering::AcqRel) != 1 {
            let mut g = relock(self.done_lock.lock());
            while self.active.load(Ordering::Acquire) != 0 {
                g = relock(self.done_cv.wait(g));
            }
        }
        // Retire the job: the chunk counter is exhausted, but clearing drops
        // the erased borrow reference eagerly.
        relock(self.state.lock()).job = None;
        let payload = relock(job.panic_payload.lock()).take();
        if let Some(payload) = payload {
            // Propagate the chunk's own panic (message and all) as if it
            // had happened on the submitting thread.
            std::panic::resume_unwind(payload);
        }
    }
}

/// Runs `body(chunk_start, chunk_end)` over `0..len` split into contiguous
/// chunks of at least `min_chunk`, in parallel on the global pool.
///
/// Chunk boundaries depend only on `len` and `min_chunk` (not the thread
/// count), so any kernel whose chunks write disjoint output is bitwise
/// deterministic regardless of parallelism.
pub fn parallel_for(len: usize, min_chunk: usize, body: &(dyn Fn(usize, usize) + Sync)) {
    if len == 0 {
        return;
    }
    let min_chunk = min_chunk.max(1);
    let pool = global();
    // Aim for ~4 chunks per thread for load balance, floored by min_chunk.
    let target = pool.threads() * 4;
    let chunk = (len.div_ceil(target)).max(min_chunk);
    let n_chunks = len.div_ceil(chunk);
    if n_chunks <= 1 {
        body(0, len);
        return;
    }
    pool.run(n_chunks, &|i| {
        let start = i * chunk;
        let end = (start + chunk).min(len);
        body(start, end);
    });
}

/// A `Send + Sync` wrapper for a raw mutable pointer handed to disjoint
/// parallel writers. The caller must guarantee chunks write non-overlapping
/// regions.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub *mut T);
// SAFETY: the wrapper adds no operations of its own; every dereference goes
// through `slice_mut`, whose contract obliges callers to hand disjoint
// in-bounds regions to each thread.
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: as above — soundness is delegated to the `slice_mut` contract.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Reborrows `len` elements starting at `offset` as a mutable slice.
    ///
    /// # Safety
    ///
    /// The region must be in-bounds and not aliased by any other live
    /// borrow for the duration of use.
    #[inline]
    pub unsafe fn slice_mut(&self, offset: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_chunk_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        global().run(1000, &|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_for_covers_range() {
        let sum = AtomicU64::new(0);
        parallel_for(10_001, 64, &|s, e| {
            let local: u64 = (s as u64..e as u64).sum();
            sum.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10_001 * 10_000 / 2);
    }

    #[test]
    fn sequential_jobs_reuse_pool() {
        for round in 0..50 {
            let count = AtomicUsize::new(0);
            global().run(round + 1, &|_| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), round + 1);
        }
    }

    #[test]
    fn concurrent_submitters_serialize_safely() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..20 {
                        let n = AtomicUsize::new(0);
                        global().run(37, &|_| {
                            n.fetch_add(1, Ordering::Relaxed);
                        });
                        assert_eq!(n.load(Ordering::Relaxed), 37);
                    }
                });
            }
        });
    }

    #[test]
    fn chunk_panic_payload_reaches_submitter() {
        let err = std::panic::catch_unwind(|| {
            global().run(64, &|i| {
                if i == 13 {
                    panic!("chunk 13 exploded");
                }
            });
        })
        .expect_err("the chunk panic must propagate");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "chunk 13 exploded", "original payload must survive");
        // The pool must stay usable after a panicking job.
        let n = AtomicUsize::new(0);
        global().run(8, &|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn disjoint_writes_through_sendptr() {
        let mut data = vec![0u32; 512];
        let ptr = SendPtr(data.as_mut_ptr());
        parallel_for(512, 8, &|s, e| {
            // SAFETY: parallel_for hands each task a disjoint [s, e) range
            // inside the 512-element buffer.
            let out = unsafe { ptr.slice_mut(s, e - s) };
            for (k, o) in out.iter_mut().enumerate() {
                *o = (s + k) as u32;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i as u32);
        }
    }
}
