//! In-repo pseudo-random number generation (no external `rand` crate).
//!
//! The workspace is dependency-free by design: every crate that needs
//! randomness (weight init, dropout, neighborhood sampling, synthetic graph
//! generation) uses this module. The generator is xoshiro256** — the same
//! family `rand`'s `SmallRng` uses — seeded through SplitMix64 so that any
//! `u64` seed (including 0) expands to a full 256-bit state. Independent
//! per-worker streams are derived with [`StdRng::split`].
//!
//! The API mirrors the subset of `rand` the codebase uses (`random`,
//! `random_range`, `shuffle`) so call sites read the same as before.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: expands/advances a 64-bit state with strong avalanche.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Sample {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for usize {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for i32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32 as i32
    }
}

impl Sample for i64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f32 {
    /// Uniform in `[0, 1)` using the top 24 bits of the stream.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits of the stream.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled uniformly. Implemented for the integer and
/// float range types used across the workspace.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                let span = (self.end - self.start) as u64;
                // Lemire-style rejection keeps the draw unbiased.
                self.start + (uniform_u64_below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range.
                    return <$t>::sample(rng);
                }
                lo + (uniform_u64_below(rng, span) as $t)
            }
        }
    )*};
}

int_range_impl!(u32, u64, usize, i32, i64);

macro_rules! float_range_impl {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty sampling range");
                self.start + <$t>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty sampling range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}

float_range_impl!(f32, f64);

/// Unbiased uniform draw in `[0, bound)` by multiply-shift with rejection.
#[inline]
fn uniform_u64_below<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let (hi, lo) = mul_wide(x, bound);
        if lo >= bound || lo >= (bound.wrapping_neg() % bound) {
            return hi;
        }
    }
}

/// 64×64 → 128-bit multiply returning (high, low) words.
#[inline]
fn mul_wide(a: u64, b: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128);
    ((wide >> 64) as u64, wide as u64)
}

/// The uniform-generation interface (a minimal stand-in for `rand::Rng`).
pub trait Rng {
    /// The next 64 raw bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Draws one uniform value of type `T` (`f32`/`f64` in `[0,1)`).
    #[inline]
    fn random<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// In-place Fisher–Yates shuffle, as a slice extension so call sites read
/// `xs.shuffle(&mut rng)` (the `rand::seq::SliceRandom` idiom).
pub trait SliceRandom {
    /// Shuffles the slice uniformly in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = uniform_u64_below(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }
}

/// xoshiro256** — the workspace standard generator. Fast (one rotate, one
/// shift, two xors per draw), 256-bit state, passes BigCrush.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl StdRng {
    /// Deterministic construction from a 64-bit seed, expanded through
    /// SplitMix64 (the construction recommended by the xoshiro authors, and
    /// what `rand`'s `seed_from_u64` does).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }

    /// A nondeterministically seeded generator (wall clock + a process-wide
    /// counter), for call sites that do not need reproducibility.
    pub fn from_entropy() -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        // lint: allow(determinism, from_entropy is the one documented nondeterministic seed source; reproducible paths use seed_from_u64)
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        // Relaxed: the counter only needs unique values per call.
        let c = COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::seed_from_u64(t ^ c.rotate_left(32) ^ 0xA076_1D64_78BD_642F)
    }

    /// Derives an independent child stream (for per-worker RNGs): hashes the
    /// parent's next two outputs through SplitMix64 so parent and child
    /// sequences do not overlap in practice.
    pub fn split(&mut self) -> Self {
        let mut sm = self.next_u64() ^ self.next_u64().rotate_left(31);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        StdRng { s }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // lint: allow(panic-reachability, the xoshiro state array has fixed length 4 and every index is a literal)
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// A nondeterministically seeded [`StdRng`] (the `rand::rng()` idiom).
pub fn rng() -> StdRng {
    StdRng::from_entropy()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut r = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let x: f32 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn integer_ranges_are_bounded_and_cover() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.random_range(0u32..10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit");
        for _ in 0..1000 {
            let v = r.random_range(5usize..=9);
            assert!((5..=9).contains(&v));
        }
        for _ in 0..1000 {
            let v = r.random_range(-3i64..3);
            assert!((-3..3).contains(&v));
        }
    }

    #[test]
    fn float_ranges_are_bounded() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = r.random_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w = r.random_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut xs: Vec<u32> = (0..100).collect();
        xs.shuffle(&mut r);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn split_streams_are_independent() {
        let mut parent = StdRng::seed_from_u64(9);
        let mut child = parent.split();
        let overlap = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| r.random_bool(0.25)).count();
        assert!((hits as f64 / 10_000.0 - 0.25).abs() < 0.02);
    }
}
