//! Learning-rate schedules, composable with any [`crate::optim::Optimizer`].

/// A learning-rate schedule: maps a 0-based step index to a multiplier of
/// the base learning rate.
pub trait LrSchedule {
    /// The LR multiplier at `step`.
    fn factor(&self, step: usize) -> f32;

    /// Convenience: the absolute LR at `step` for a base rate.
    fn lr_at(&self, base_lr: f32, step: usize) -> f32 {
        base_lr * self.factor(step)
    }
}

/// Constant learning rate.
#[derive(Clone, Copy, Debug, Default)]
pub struct Constant;

impl LrSchedule for Constant {
    fn factor(&self, _step: usize) -> f32 {
        1.0
    }
}

/// Multiply the rate by `gamma` every `every` steps.
#[derive(Clone, Copy, Debug)]
pub struct StepDecay {
    /// Steps between decays.
    pub every: usize,
    /// Multiplicative decay factor.
    pub gamma: f32,
}

impl LrSchedule for StepDecay {
    fn factor(&self, step: usize) -> f32 {
        self.gamma.powi((step / self.every.max(1)) as i32)
    }
}

/// Cosine annealing from 1 down to `floor` over `total_steps`.
#[derive(Clone, Copy, Debug)]
pub struct CosineAnnealing {
    /// Steps in one annealing period.
    pub total_steps: usize,
    /// Final multiplier.
    pub floor: f32,
}

impl LrSchedule for CosineAnnealing {
    fn factor(&self, step: usize) -> f32 {
        let t = (step.min(self.total_steps) as f32) / self.total_steps.max(1) as f32;
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
        self.floor + (1.0 - self.floor) * cos
    }
}

/// Linear warmup for `warmup_steps`, then delegate to an inner schedule
/// (with the step re-based to the end of warmup).
#[derive(Clone, Copy, Debug)]
pub struct Warmup<S> {
    /// Steps of linear ramp from ~0 to 1.
    pub warmup_steps: usize,
    /// Schedule applied after warmup.
    pub after: S,
}

impl<S: LrSchedule> LrSchedule for Warmup<S> {
    fn factor(&self, step: usize) -> f32 {
        if step < self.warmup_steps {
            (step + 1) as f32 / self.warmup_steps.max(1) as f32
        } else {
            self.after.factor(step - self.warmup_steps)
        }
    }
}

/// Applies a schedule to an optimizer before a step:
/// `apply_schedule(&mut opt, base, &schedule, step)`.
pub fn apply_schedule<O: crate::optim::Optimizer>(
    opt: &mut O,
    base_lr: f32,
    schedule: &impl LrSchedule,
    step: usize,
) {
    opt.set_learning_rate(schedule.lr_at(base_lr, step));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{Optimizer, Sgd};

    #[test]
    fn constant_is_one() {
        assert_eq!(Constant.factor(0), 1.0);
        assert_eq!(Constant.factor(10_000), 1.0);
    }

    #[test]
    fn step_decay_halves() {
        let s = StepDecay { every: 10, gamma: 0.5 };
        assert_eq!(s.factor(0), 1.0);
        assert_eq!(s.factor(9), 1.0);
        assert_eq!(s.factor(10), 0.5);
        assert_eq!(s.factor(25), 0.25);
    }

    #[test]
    fn cosine_monotone_to_floor() {
        let s = CosineAnnealing { total_steps: 100, floor: 0.1 };
        assert!((s.factor(0) - 1.0).abs() < 1e-6);
        assert!((s.factor(100) - 0.1).abs() < 1e-6);
        let mut prev = f32::INFINITY;
        for step in 0..=100 {
            let f = s.factor(step);
            assert!(f <= prev + 1e-6, "cosine must be non-increasing");
            prev = f;
        }
    }

    #[test]
    fn warmup_ramps_then_delegates() {
        let s = Warmup { warmup_steps: 4, after: StepDecay { every: 2, gamma: 0.5 } };
        assert!((s.factor(0) - 0.25).abs() < 1e-6);
        assert!((s.factor(3) - 1.0).abs() < 1e-6);
        assert_eq!(s.factor(4), 1.0); // step 0 of inner
        assert_eq!(s.factor(6), 0.5); // step 2 of inner
    }

    #[test]
    fn apply_schedule_updates_optimizer() {
        let mut opt = Sgd::new(0.2);
        let s = StepDecay { every: 1, gamma: 0.5 };
        apply_schedule(&mut opt, 0.2, &s, 2);
        assert!((opt.learning_rate() - 0.05).abs() < 1e-7);
    }
}
