//! Tensor shapes and row-major index arithmetic.

use std::fmt;

/// The shape of a dense, row-major tensor.
///
/// A `Shape` is an ordered list of dimension sizes. Scalars are represented by
/// the empty shape. Most of the SALIENT compute path uses rank-1 and rank-2
/// tensors (feature matrices, weight matrices, label vectors).
///
/// # Examples
///
/// ```
/// use salient_tensor::Shape;
///
/// let s = Shape::matrix(3, 4);
/// assert_eq!(s.len(), 12);
/// assert_eq!(s.rank(), 2);
/// assert_eq!(s.dims(), &[3, 4]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a list of dimension sizes.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Shape(dims.into())
    }

    /// The shape of a scalar (rank 0, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// The shape of a length-`n` vector.
    pub fn vector(n: usize) -> Self {
        Shape(vec![n])
    }

    /// The shape of an `rows × cols` matrix.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape(vec![rows, cols])
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of all dimensions; 1 for scalars).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// The size of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.rank()`.
    pub fn dim(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Number of rows; for a vector this is its length, for a scalar 1.
    pub fn rows(&self) -> usize {
        match self.0.len() {
            0 => 1,
            _ => self.0[0],
        }
    }

    /// Number of columns of a rank-2 shape; 1 for vectors and scalars.
    pub fn cols(&self) -> usize {
        match self.0.len() {
            0 | 1 => 1,
            _ => self.0[1..].iter().product(),
        }
    }

    /// Row-major strides for this shape.
    ///
    /// ```
    /// # use salient_tensor::Shape;
    /// assert_eq!(Shape::new([2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Linear row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if `idx` has the wrong rank or any coordinate is out of bounds.
    pub fn offset(&self, idx: &[usize]) -> usize {
        assert_eq!(
            idx.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            idx.len(),
            self.0.len()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (d, (&i, &s)) in idx.iter().zip(strides.iter()).enumerate() {
            assert!(
                i < self.0[d],
                "index {i} out of bounds for dimension {d} of size {}",
                self.0[d]
            );
            off += i * s;
        }
        off
    }

    /// Whether two shapes are compatible for elementwise binary ops with
    /// row-broadcasting: identical shapes, or `other` is a single row / scalar
    /// broadcast across the rows of `self`.
    pub fn broadcasts_with(&self, other: &Shape) -> bool {
        if self == other {
            return true;
        }
        if other.rank() == 0 {
            return true;
        }
        // A [1, c] or [c] row vector broadcasts over [r, c].
        self.rank() == 2 && other.len() == self.cols()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(v: Vec<usize>) -> Self {
        Shape(v)
    }
}

impl From<&[usize]> for Shape {
    fn from(v: &[usize]) -> Self {
        Shape(v.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(v: [usize; N]) -> Self {
        Shape(v.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows(), 1);
        assert_eq!(s.cols(), 1);
    }

    #[test]
    fn matrix_dims_and_strides() {
        let s = Shape::matrix(3, 5);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.len(), 15);
        assert_eq!(s.strides(), vec![5, 1]);
        assert_eq!(s.offset(&[2, 3]), 13);
    }

    #[test]
    fn vector_strides() {
        let s = Shape::vector(7);
        assert_eq!(s.strides(), vec![1]);
        assert_eq!(s.offset(&[6]), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_out_of_bounds_panics() {
        Shape::matrix(2, 2).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn offset_wrong_rank_panics() {
        Shape::matrix(2, 2).offset(&[1]);
    }

    #[test]
    fn broadcast_rules() {
        let m = Shape::matrix(4, 3);
        assert!(m.broadcasts_with(&Shape::matrix(4, 3)));
        assert!(m.broadcasts_with(&Shape::vector(3)));
        assert!(m.broadcasts_with(&Shape::scalar()));
        assert!(!m.broadcasts_with(&Shape::vector(4)));
        assert!(!m.broadcasts_with(&Shape::matrix(3, 4)));
    }

    #[test]
    fn zero_dim_is_empty() {
        assert!(Shape::matrix(0, 3).is_empty());
        assert!(!Shape::matrix(1, 3).is_empty());
    }
}
