//! Poison-tolerant lock helpers.
//!
//! A panicking batch-prep worker poisons any `Mutex` it held; the fault
//! layer (PR 2) catches the panic and retries the batch, so the lock's
//! *data* is still consistent — every structure guarded in this workspace
//! (channel queues, retry deques, pool job slots) keeps its invariants
//! between mutations. Propagating the poison with `.unwrap()` would turn
//! one recovered worker panic into a cascade that kills the whole prep
//! pipeline, which is exactly what the supervised-recovery layer exists to
//! prevent. These helpers recover the guard from a poisoned lock instead of
//! panicking; the hot-path `panic-freedom` lint forbids the bare
//! `.lock().unwrap()` pattern.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `m`, recovering the guard if a previous holder panicked.
#[inline]
pub fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait` that recovers the guard from a poisoned lock.
#[inline]
pub fn wait_unpoisoned<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// `Condvar::wait_timeout` that recovers the guard from a poisoned lock.
#[inline]
pub fn wait_timeout_unpoisoned<'a, T>(
    cv: &Condvar,
    guard: MutexGuard<'a, T>,
    dur: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    cv.wait_timeout(guard, dur)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Condvar, Mutex};

    #[test]
    fn lock_recovers_after_holder_panicked() {
        let m = Arc::new(Mutex::new(7u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.is_poisoned());
        assert_eq!(*lock_unpoisoned(&m), 7);
        *lock_unpoisoned(&m) = 8;
        assert_eq!(*lock_unpoisoned(&m), 8);
    }

    #[test]
    fn wait_timeout_returns_on_deadline() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let g = lock_unpoisoned(&m);
        let (_g, timed_out) = wait_timeout_unpoisoned(&cv, g, Duration::from_millis(5));
        assert!(timed_out.timed_out());
    }

    #[test]
    fn wait_wakes_on_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut done = lock_unpoisoned(m);
            while !*done {
                done = wait_unpoisoned(cv, done);
            }
        });
        {
            let (m, cv) = &*pair;
            *lock_unpoisoned(m) = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }
}
