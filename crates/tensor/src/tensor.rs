//! The dense, row-major, reference-counted `f32` tensor.

use crate::shape::Shape;
use std::fmt;
use std::sync::Arc;

/// A dense, row-major tensor of `f32` values.
///
/// Storage is shared via [`Arc`], so clones are cheap; mutation goes through
/// [`Tensor::data_mut`], which copies on write when the storage is shared.
/// This mirrors the "caller decides where to copy" guideline: the training
/// loop keeps a single owner per parameter, so updates are in place, while
/// activations can be shared freely across the autograd tape.
///
/// # Examples
///
/// ```
/// use salient_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
/// assert_eq!(t.at(&[1, 0]), 3.0);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Shape,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the number of elements of
    /// `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor {
            data: Arc::new(data),
            shape,
        }
    }

    /// Creates a tensor filled with zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        Tensor {
            data: Arc::new(vec![0.0; shape.len()]),
            shape,
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        Tensor {
            data: Arc::new(vec![value; shape.len()]),
            shape,
        }
    }

    /// Creates a rank-0 tensor holding a single value.
    pub fn scalar(value: f32) -> Self {
        Tensor::from_vec(vec![value], Shape::scalar())
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.shape.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Number of rows (see [`Shape::rows`]).
    pub fn rows(&self) -> usize {
        self.shape.rows()
    }

    /// Number of columns (see [`Shape::cols`]).
    pub fn cols(&self) -> usize {
        self.shape.cols()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer, copying if the storage is
    /// currently shared with another tensor.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// The element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds or has the wrong rank.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.shape.offset(idx)]
    }

    /// The single value of a scalar (or one-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() on tensor of shape {}", self.shape);
        // lint: allow(panic-reachability, guarded by the len() == 1 assert directly above)
        self.data[0]
    }

    /// A read-only view of row `r` of a rank-2 tensor (or the whole buffer
    /// for rank ≤ 1 when `r == 0`).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f32] {
        let cols = self.cols();
        let rows = self.rows();
        assert!(r < rows, "row {r} out of bounds for {} rows", rows);
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Returns a tensor with the same data but a different shape.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.len(),
            shape.len(),
            "cannot reshape {} to {shape}",
            self.shape
        );
        Tensor {
            data: Arc::clone(&self.data),
            shape,
        }
    }

    /// A copy of the first `k` rows (PyG's `x[:k]`, the `x_target` slice in
    /// the bipartite GNN layer).
    ///
    /// # Panics
    ///
    /// Panics if `k > self.rows()`.
    pub fn narrow_rows(&self, k: usize) -> Tensor {
        assert!(k <= self.rows(), "narrow to {k} rows of {}", self.rows());
        let cols = self.cols();
        Tensor::from_vec(self.data[..k * cols].to_vec(), Shape::matrix(k, cols))
    }

    /// Gathers rows by index into a new tensor (feature slicing).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        let cols = self.cols();
        let rows = self.rows();
        let mut out = Vec::with_capacity(idx.len() * cols);
        for &i in idx {
            assert!(i < rows, "gather index {i} out of bounds for {rows} rows");
            out.extend_from_slice(&self.data[i * cols..(i + 1) * cols]);
        }
        Tensor::from_vec(out, Shape::matrix(idx.len(), cols))
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max() of empty tensor");
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// The L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Elementwise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(self.data.iter().map(|&x| f(x)).collect(), self.shape.clone())
    }

    /// Elementwise binary zip with another tensor of identical shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape, other.shape,
            "zip shape mismatch {} vs {}",
            self.shape, other.shape
        );
        Tensor::from_vec(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape.clone(),
        )
    }

    /// In-place `self += alpha * other` (used by optimizers and all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "axpy shape mismatch {} vs {}",
            self.shape, other.shape
        );
        let dst = self.data_mut();
        for (d, s) in dst.iter_mut().zip(other.data.iter()) {
            *d += alpha * s;
        }
    }

    /// In-place multiply by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for d in self.data_mut() {
            *d *= alpha;
        }
    }

    /// In-place set to zero, preserving shape and (if unshared) allocation.
    pub fn zero_(&mut self) {
        for d in self.data_mut() {
            *d = 0.0;
        }
    }

    /// Whether every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute difference to another tensor of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl PartialEq for Tensor {
    fn eq(&self, other: &Self) -> bool {
        self.shape == other.shape && self.data == other.data
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor(shape={}, ", self.shape)?;
        if self.len() <= 8 {
            write!(f, "data={:?})", &self.data[..])
        } else {
            write!(f, "data=[{}, {}, ...])", self.data[0], self.data[1])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_at() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], [2, 3]);
        assert_eq!(t.at(&[0, 0]), 1.0);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_wrong_len_panics() {
        Tensor::from_vec(vec![1.0; 5], [2, 3]);
    }

    #[test]
    fn clone_is_shallow_until_mutated() {
        let mut a = Tensor::zeros([4]);
        let b = a.clone();
        a.data_mut()[0] = 7.0;
        assert_eq!(a.at(&[0]), 7.0);
        assert_eq!(b.at(&[0]), 0.0, "copy-on-write must not affect clones");
    }

    #[test]
    fn narrow_and_gather() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), [4, 3]);
        let head = t.narrow_rows(2);
        assert_eq!(head.shape().dims(), &[2, 3]);
        assert_eq!(head.data(), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let picked = t.gather_rows(&[3, 0]);
        assert_eq!(picked.data(), &[9.0, 10.0, 11.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.0], [3]);
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.max(), 3.0);
        assert!((t.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert!((t.norm() - (14.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::ones([3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], [3]);
        a.axpy(2.0, &b);
        assert_eq!(a.data(), &[3.0, 5.0, 7.0]);
        a.scale(0.5);
        assert_eq!(a.data(), &[1.5, 2.5, 3.5]);
    }

    #[test]
    fn reshape_shares_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        let v = t.reshape([4]);
        assert_eq!(v.at(&[3]), 4.0);
    }

    #[test]
    fn row_view() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn finite_check() {
        assert!(Tensor::ones([2]).all_finite());
        assert!(!Tensor::full([2], f32::NAN).all_finite());
    }
}
