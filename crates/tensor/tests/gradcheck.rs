//! Numerical gradient checking for every differentiable operation.
//!
//! For each op we build a scalar loss that exercises it, compute the
//! analytic gradient by backpropagation, and compare against central finite
//! differences. This is the definitive correctness test for the autograd
//! engine that trains every model in the reproduction.

use salient_tensor::rng::{Rng, StdRng};
use salient_tensor::{Tape, Tensor, Var};

/// Central-difference gradient of `f` at `x0`, compared elementwise against
/// the analytic gradient produced by `f`'s tape.
fn gradcheck(name: &str, x0: &[f32], shape: &[usize], f: &dyn Fn(&Var) -> Var, tol: f32) {
    let tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(x0.to_vec(), shape));
    let loss = f(&x);
    assert_eq!(loss.value().len(), 1, "{name}: loss must be scalar");
    let grads = tape.backward(&loss);
    let analytic = grads.wrt(&x).expect("input must receive gradient").clone();

    let eps = 1e-3f32;
    for i in 0..x0.len() {
        let mut up = x0.to_vec();
        up[i] += eps;
        let mut down = x0.to_vec();
        down[i] -= eps;
        let tape_u = Tape::new();
        let fu = f(&tape_u.constant(Tensor::from_vec(up, shape))).value().item();
        let tape_d = Tape::new();
        let fd = f(&tape_d.constant(Tensor::from_vec(down, shape))).value().item();
        let numeric = (fu - fd) / (2.0 * eps);
        let got = analytic.data()[i];
        assert!(
            (got - numeric).abs() <= tol * (1.0 + numeric.abs()),
            "{name}: element {i}: analytic {got} vs numeric {numeric}"
        );
    }
}

fn random_input(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random_range(-1.5f32..1.5)).collect()
}

#[test]
fn matmul_gram_loss() {
    // loss = sum((x @ reshape(x))²) differentiates matmul through *both*
    // operands simultaneously.
    let x0 = random_input(6, 2);
    gradcheck(
        "matmul_gram",
        &x0,
        &[2, 3],
        &|x| {
            let y = x.reshape([3, 2]);
            let p = x.matmul(&y);
            p.mul(&p).sum_all()
        },
        3e-2,
    );
}

#[test]
fn elementwise_chain() {
    let x0 = random_input(8, 3);
    gradcheck(
        "relu_sigmoid_tanh_chain",
        &x0,
        &[2, 4],
        &|x| {
            x.relu()
                .add(&x.sigmoid())
                .mul(&x.tanh())
                .sub(&x.scale(0.3))
                .sum_all()
        },
        2e-2,
    );
}

#[test]
fn leaky_relu_grad() {
    let x0 = random_input(6, 4);
    gradcheck(
        "leaky_relu",
        &x0,
        &[6],
        &|x| x.leaky_relu(0.1).mul(&x.leaky_relu(0.1)).sum_all(),
        2e-2,
    );
}

#[test]
fn log_softmax_nll() {
    let x0 = random_input(12, 5);
    gradcheck(
        "log_softmax_nll",
        &x0,
        &[3, 4],
        &|x| x.log_softmax().nll_loss(&[1, 3, 0]),
        2e-2,
    );
}

#[test]
fn broadcast_bias_add() {
    let x0 = random_input(3, 12);
    gradcheck(
        "bias_broadcast",
        &x0,
        &[3],
        &|bias| {
            // A fixed activation derived from the bias itself keeps all
            // inputs on one tape: act = sigmoid(bias) replicated via matmul
            // with reshape.
            let col = bias.reshape([3, 1]);
            let row = bias.reshape([1, 3]);
            let outer = col.matmul(&row); // 3×3, fully bias-dependent
            outer.add(&row).mul(&outer.add(&row)).sum_all()
        },
        3e-2,
    );
}

#[test]
fn narrow_concat_reshape() {
    let x0 = random_input(12, 6);
    gradcheck(
        "narrow_concat_reshape",
        &x0,
        &[4, 3],
        &|x| {
            let head = x.narrow_rows(2);
            let tail = x.narrow_rows(4).narrow_rows(2);
            let cat = Var::concat_cols(&[head, tail]);
            cat.mul(&cat).sum_all().scale(0.5)
        },
        2e-2,
    );
}

#[test]
fn gather_scatter_ops() {
    let x0 = random_input(9, 7);
    let (src, dst) = (vec![0u32, 1, 2, 2], vec![0u32, 0, 1, 2]);
    gradcheck(
        "scatter_mean_quadratic",
        &x0,
        &[3, 3],
        &|x| {
            let agg = x.scatter_mean(&src, &dst, 3);
            agg.mul(&agg).sum_all()
        },
        2e-2,
    );
    gradcheck(
        "scatter_add_then_gather",
        &x0,
        &[3, 3],
        &|x| {
            let agg = x.scatter_add(&src, &dst, 3);
            let g = agg.gather_rows(&[2, 0]);
            g.mul(&g).sum_all()
        },
        2e-2,
    );
}

#[test]
fn edge_softmax_attention_path() {
    // The full GAT attention pipeline: per-edge logits → edge softmax →
    // weighted aggregation, differentiated through the feature matrix.
    let x0 = random_input(8, 8);
    let (src, dst) = (vec![0u32, 1, 2, 3], vec![0u32, 0, 1, 1]);
    gradcheck(
        "gat_attention_path",
        &x0,
        &[4, 2],
        &|x| {
            // Per-edge logit: dot(x[src_e], x[dst_e]) computed as the
            // row-sums of the elementwise product of gathered rows.
            let prod = x.gather_rows(&src).mul(&x.gather_rows(&dst)); // 4×2
            let flat = prod.reshape([8, 1]);
            let even: Vec<u32> = (0..4u32).map(|e| e * 2).collect();
            let odd: Vec<u32> = (0..4u32).map(|e| e * 2 + 1).collect();
            let logits = flat
                .gather_rows(&even)
                .add(&flat.gather_rows(&odd))
                .reshape([4]);
            let alpha = logits.edge_softmax(&dst, 2);
            let out = x.weighted_scatter_add(&alpha, &src, &dst, 2);
            out.mul(&out).sum_all()
        },
        4e-2,
    );
}

#[test]
fn batch_norm_train_full_path() {
    let x0 = random_input(12, 9);
    gradcheck(
        "batch_norm_composite",
        &x0,
        &[4, 3],
        &|x| {
            // Data-dependent affine parameters route gradients through all
            // three batch-norm inputs.
            let g = x.narrow_rows(1).reshape([3]).sigmoid();
            let b = x.narrow_rows(1).reshape([3]).tanh();
            let (y, _, _) = x.batch_norm_train(&g, &b, 1e-3);
            y.mul(&y).sum_all()
        },
        8e-2,
    );
}

#[test]
fn dropout_eval_passthrough_grad() {
    let x0 = random_input(5, 10);
    let mut rng = StdRng::seed_from_u64(0);
    let tape = Tape::new();
    let x = tape.constant(Tensor::from_vec(x0, [5]));
    let y = x.dropout(0.5, false, &mut rng).sum_all();
    let grads = tape.backward(&y);
    assert_eq!(grads.wrt(&x).unwrap().data(), &[1.0; 5]);
}

#[test]
fn dropout_train_mask_consistency() {
    // In training mode the same mask must be applied forward and backward:
    // grad is nonzero exactly where the output is nonzero.
    let mut rng = StdRng::seed_from_u64(42);
    let tape = Tape::new();
    let x = tape.constant(Tensor::full([64], 2.0));
    let y = x.dropout(0.5, true, &mut rng);
    let out = y.value();
    let grads = tape.backward(&y.sum_all());
    let g = grads.wrt(&x).unwrap();
    for (o, gi) in out.data().iter().zip(g.data().iter()) {
        assert_eq!(*o == 0.0, *gi == 0.0, "mask must match between passes");
    }
}

#[test]
fn mean_all_and_scale() {
    let x0 = random_input(6, 11);
    gradcheck(
        "mean_scale",
        &x0,
        &[6],
        &|x| x.mul(&x).mean_all().scale(3.0),
        1e-2,
    );
}

#[test]
fn deep_composition_stays_accurate() {
    // A deliberately deep chain (20 ops) to catch accumulation errors in
    // the tape walk.
    let x0 = random_input(4, 12);
    gradcheck(
        "deep_chain",
        &x0,
        &[2, 2],
        &|x| {
            let mut y = x.clone();
            for _ in 0..5 {
                y = y.tanh().scale(1.1).add(&x.sigmoid());
            }
            y.mul(&y).sum_all()
        },
        3e-2,
    );
}
