//! Pipeline occupancy and stall attribution computed from span intervals.
//!
//! This pass reproduces the paper's Table 1 (per-stage blocking breakdown)
//! and Figure 4 (pipeline-overlap) accounting from *recorded execution*
//! rather than hand-threaded sums: the trainer thread's `stage.*` spans
//! partition its epoch wall-clock into prep-blocked / transfer / compute /
//! other, while worker spans (`prep.sample`, `prep.slice`, `prep.copy`,
//! `prep.slot_wait`) attribute where preparation time went and how much of
//! it overlapped training compute.

use crate::metrics::MetricsSnapshot;
use crate::names::spans;
use crate::span::{EventKind, SpanEvent};

/// Everything recorded by a [`crate::Trace`], frozen at one point in time.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// All span and point events, sorted by `(start_ns, tid, name)`.
    pub events: Vec<SpanEvent>,
    /// Thread-name table indexed by `tid`.
    pub threads: Vec<String>,
    /// Metric instruments.
    pub metrics: MetricsSnapshot,
}

impl Snapshot {
    /// Interval events named `name`.
    pub fn spans<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a SpanEvent> {
        self.events
            .iter()
            .filter(move |e| e.kind == EventKind::Span && e.name == name)
    }

    /// Total nanoseconds across all spans named `name`.
    pub fn sum_ns(&self, name: &str) -> u64 {
        self.spans(name).map(SpanEvent::dur_ns).sum()
    }

    /// Total nanoseconds across spans named `name` on thread `tid`.
    pub fn sum_ns_on(&self, name: &str, tid: u32) -> u64 {
        self.spans(name)
            .filter(|e| e.tid == tid)
            .map(SpanEvent::dur_ns)
            .sum()
    }

    /// Number of events (spans and instants) named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.events.iter().filter(|e| e.name == name).count()
    }

    /// Number of distinct recording threads.
    pub fn distinct_tids(&self) -> usize {
        let mut tids: Vec<u32> = self.events.iter().map(|e| e.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        tids.len()
    }

    /// A sub-snapshot keeping only events fully inside `[start_ns, end_ns]`
    /// (an epoch window, say). Metric instruments are carried over
    /// unchanged — counters are cumulative over the whole run.
    pub fn window(&self, start_ns: u64, end_ns: u64) -> Snapshot {
        Snapshot {
            events: self
                .events
                .iter()
                .filter(|e| e.start_ns >= start_ns && e.end_ns <= end_ns)
                .cloned()
                .collect(),
            threads: self.threads.clone(),
            metrics: self.metrics.clone(),
        }
    }

    /// `[min start, max end]` over every event, or `None` when empty.
    pub fn extent(&self) -> Option<(u64, u64)> {
        let start = self.events.iter().map(|e| e.start_ns).min()?;
        let end = self.events.iter().map(|e| e.end_ns).max()?;
        Some((start, end))
    }
}

/// Merges possibly overlapping `(start, end)` intervals into a disjoint
/// sorted list.
fn merge_intervals(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some((_, le)) if s <= *le => *le = (*le).max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Total length of the intersection of two *disjoint sorted* interval lists.
fn intersection_ns(a: &[(u64, u64)], b: &[(u64, u64)]) -> u64 {
    let (mut i, mut j, mut total) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if hi > lo {
            total += hi - lo;
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    total
}

/// Total length of the union of (possibly overlapping) intervals.
fn union_ns(iv: Vec<(u64, u64)>) -> u64 {
    merge_intervals(iv).iter().map(|(s, e)| e - s).sum()
}

/// Per-thread busy time (union of that thread's non-wrapper spans).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreadOccupancy {
    /// Dense thread id (index into [`Snapshot::threads`]).
    pub tid: u32,
    /// Thread name.
    pub name: String,
    /// Union length of the thread's recorded work spans.
    pub busy_ns: u64,
}

/// The stall-attribution report (see the module docs).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PipelineReport {
    /// Thread that recorded the `stage.train` spans (the compute consumer;
    /// falls back to the `epoch` recorder for compute-less snapshots).
    pub trainer_tid: Option<u32>,
    /// Measurement window: summed `epoch` span time on whichever thread
    /// recorded the wrapper (falling back to the snapshot extent when no
    /// epoch span exists).
    pub window_ns: u64,
    /// Trainer blocked on batch preparation (`stage.prep`).
    pub prep_ns: u64,
    /// Trainer in host→device staging (`stage.transfer`).
    pub transfer_ns: u64,
    /// Trainer in model compute (`stage.train`).
    pub compute_ns: u64,
    /// Trainer time outside the three stages. Always equals
    /// `fill_ns + idle_ns + shutdown_ns` — the named decomposition below —
    /// so nothing in the window is left unattributed.
    pub other_ns: u64,
    /// Pipeline fill: each epoch window's lead-in before the trainer's
    /// first stage activity, plus explicit warm-up waits on the trainer.
    pub fill_ns: u64,
    /// Mid-run scheduling gaps on the trainer (the residual after fill and
    /// shutdown are carved out of `other_ns`).
    pub idle_ns: u64,
    /// Epoch tail after the trainer's last stage activity (drain/teardown).
    pub shutdown_ns: u64,
    /// Worker time in neighborhood sampling.
    pub worker_sample_ns: u64,
    /// Worker time in slicing.
    pub worker_slice_ns: u64,
    /// Worker time in the multiprocessing-emulation copy.
    pub worker_copy_ns: u64,
    /// Worker time blocked waiting for a free pinned slot (backpressure).
    pub worker_slot_wait_ns: u64,
    /// Preparation-pipeline work (sample/slice/copy/transfer on non-trainer
    /// threads) that ran *concurrently with* trainer compute — the
    /// pipeline-overlap win.
    pub overlap_ns: u64,
    /// DDP ring-step communication time across all ranks.
    pub comm_ns: u64,
    /// Per-thread busy time.
    pub occupancy: Vec<ThreadOccupancy>,
}

impl PipelineReport {
    /// Percent of the window attributed to `part_ns` (0 when empty).
    pub fn pct(&self, part_ns: u64) -> f64 {
        if self.window_ns == 0 {
            0.0
        } else {
            100.0 * part_ns as f64 / self.window_ns as f64
        }
    }

    /// The prep/transfer/compute/other percentages (sum to 100 whenever the
    /// window is nonzero).
    pub fn stage_pcts(&self) -> [f64; 4] {
        [
            self.pct(self.prep_ns),
            self.pct(self.transfer_ns),
            self.pct(self.compute_ns),
            self.pct(self.other_ns),
        ]
    }

    /// Fraction of trainer compute time that preparation overlapped with
    /// (0 when no compute was recorded).
    pub fn overlap_frac(&self) -> f64 {
        if self.compute_ns == 0 {
            0.0
        } else {
            self.overlap_ns as f64 / self.compute_ns as f64
        }
    }
}

/// Computes the stall-attribution report from a snapshot.
pub fn analyze(snap: &Snapshot) -> PipelineReport {
    // The trainer is *every* thread that records model compute
    // (`stage.train`) — a set, not a single tid, because the threaded
    // stage-graph executor spawns fresh stage threads per epoch, so a
    // multi-epoch run records compute on several tids and single-tid
    // attribution silently dropped every epoch after the first. The
    // `epoch` wrapper recorder is only a fallback for compute-less
    // snapshots.
    let trainer_tids: Vec<u32> = {
        let mut v: Vec<u32> = snap.spans(spans::STAGE_TRAIN).map(|e| e.tid).collect();
        v.sort_unstable();
        v.dedup();
        if v.is_empty() {
            v.extend(snap.spans(spans::EPOCH).map(|e| e.tid).take(1));
        }
        v
    };
    let trainer_tid = trainer_tids.first().copied();

    // The window is epoch wall-clock wherever the wrapper was recorded
    // (trainer thread in the inline schedule, orchestrator in the threaded
    // one); extent is the fallback for wrapper-less snapshots.
    let epoch_ns = snap.sum_ns(spans::EPOCH);
    let window_ns = if epoch_ns > 0 {
        epoch_ns
    } else {
        snap.extent().map(|(s, e)| e - s).unwrap_or(0)
    };

    let on_trainer = |name: &str| -> u64 {
        trainer_tids
            .iter()
            .map(|&t| snap.sum_ns_on(name, t))
            .sum()
    };
    let prep_ns = on_trainer(spans::STAGE_PREP);
    let transfer_ns = on_trainer(spans::STAGE_TRANSFER);
    let compute_ns = on_trainer(spans::STAGE_TRAIN);
    let other_ns = window_ns.saturating_sub(prep_ns + transfer_ns + compute_ns);

    // Attribute the `other` bucket into named categories. The window set is
    // the merged epoch spans (snapshot extent as fallback); trainer "busy"
    // is the union of its stage spans. Fill is each window's lead-in before
    // the first busy interval plus explicit warm-up waits, shutdown is the
    // tail after the last, and idle is the clamped residual — so the three
    // always sum to other_ns exactly.
    let windows: Vec<(u64, u64)> = {
        // Per-epoch windows, deliberately NOT merged: back-to-back epochs
        // touch at their boundary, and merging them would hide every
        // epoch's fill/shutdown edges except the outermost ones.
        let mut iv: Vec<(u64, u64)> = snap
            .spans(spans::EPOCH)
            .map(|e| (e.start_ns, e.end_ns))
            .filter(|(s, e)| e > s)
            .collect();
        iv.sort_unstable();
        if iv.is_empty() {
            snap.extent().into_iter().collect()
        } else {
            iv
        }
    };
    let busy: Vec<(u64, u64)> = merge_intervals(
        snap.events
            .iter()
            .filter(|e| {
                e.kind == EventKind::Span
                    && trainer_tids.contains(&e.tid)
                    && e.name != spans::EPOCH
                    && e.name != spans::RANK_EPOCH
                    && e.name != spans::WARMUP
            })
            .map(|e| (e.start_ns, e.end_ns))
            .collect(),
    );
    let mut fill_iv: Vec<(u64, u64)> = snap
        .spans(spans::WARMUP)
        .filter(|e| trainer_tids.contains(&e.tid))
        .map(|e| (e.start_ns, e.end_ns))
        .collect();
    let mut shutdown_raw = 0u64;
    for &(ws, we) in &windows {
        let clipped: Vec<(u64, u64)> = busy
            .iter()
            .filter_map(|&(s, e)| {
                let lo = s.max(ws);
                let hi = e.min(we);
                (hi > lo).then_some((lo, hi))
            })
            .collect();
        if let (Some(&(first, _)), Some(&(_, last))) = (clipped.first(), clipped.last()) {
            if first > ws {
                fill_iv.push((ws, first));
            }
            shutdown_raw += we.saturating_sub(last);
        }
    }
    let fill_ns = union_ns(fill_iv).min(other_ns);
    let shutdown_ns = shutdown_raw.min(other_ns - fill_ns);
    let idle_ns = other_ns - fill_ns - shutdown_ns;

    let worker_spans = |name: &str| -> Vec<(u64, u64)> {
        snap.spans(name)
            .filter(|e| !trainer_tids.contains(&e.tid))
            .map(|e| (e.start_ns, e.end_ns))
            .collect()
    };
    let mut prep_work: Vec<(u64, u64)> = Vec::new();
    prep_work.extend(worker_spans(spans::PREP_SAMPLE));
    prep_work.extend(worker_spans(spans::PREP_SLICE));
    prep_work.extend(worker_spans(spans::PREP_COPY));
    // Transfer/widen work on a non-trainer thread is pipeline work hidden
    // under compute too (the threaded executor's transfer stage); on the
    // inline schedule transfer runs on the trainer and stays excluded.
    prep_work.extend(worker_spans(spans::STAGE_TRANSFER));
    let compute_iv: Vec<(u64, u64)> = snap
        .spans(spans::STAGE_TRAIN)
        .filter(|e| trainer_tids.contains(&e.tid))
        .map(|e| (e.start_ns, e.end_ns))
        .collect();
    let overlap_ns = intersection_ns(
        &merge_intervals(prep_work),
        &merge_intervals(compute_iv),
    );

    let mut occupancy: Vec<ThreadOccupancy> = Vec::new();
    let mut tids: Vec<u32> = snap.events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let busy: Vec<(u64, u64)> = snap
            .events
            .iter()
            .filter(|e| {
                e.tid == tid
                    && e.kind == EventKind::Span
                    && e.name != spans::EPOCH
                    && e.name != spans::RANK_EPOCH
            })
            .map(|e| (e.start_ns, e.end_ns))
            .collect();
        occupancy.push(ThreadOccupancy {
            tid,
            name: snap
                .threads
                .get(tid as usize)
                .cloned()
                .unwrap_or_else(|| format!("thread-{tid}")),
            busy_ns: union_ns(busy),
        });
    }

    PipelineReport {
        trainer_tid,
        window_ns,
        prep_ns,
        transfer_ns,
        compute_ns,
        other_ns,
        fill_ns,
        idle_ns,
        shutdown_ns,
        worker_sample_ns: snap
            .spans(spans::PREP_SAMPLE)
            .filter(|e| !trainer_tids.contains(&e.tid))
            .map(SpanEvent::dur_ns)
            .sum(),
        worker_slice_ns: snap
            .spans(spans::PREP_SLICE)
            .filter(|e| !trainer_tids.contains(&e.tid))
            .map(SpanEvent::dur_ns)
            .sum(),
        worker_copy_ns: snap
            .spans(spans::PREP_COPY)
            .filter(|e| !trainer_tids.contains(&e.tid))
            .map(SpanEvent::dur_ns)
            .sum(),
        worker_slot_wait_ns: snap.sum_ns(spans::SLOT_WAIT),
        overlap_ns,
        comm_ns: snap.sum_ns(spans::COMM_STEP),
        occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::span::Trace;

    #[test]
    fn interval_algebra() {
        assert_eq!(
            merge_intervals(vec![(5, 10), (0, 3), (9, 12), (3, 4)]),
            vec![(0, 4), (5, 12)]
        );
        assert_eq!(union_ns(vec![(0, 10), (5, 15), (20, 25)]), 20);
        assert_eq!(
            intersection_ns(&[(0, 10), (20, 30)], &[(5, 25)]),
            5 + 5
        );
        assert_eq!(intersection_ns(&[(0, 5)], &[(5, 9)]), 0);
    }

    /// A scripted two-thread pipeline: trainer computes 0..100 while a
    /// worker samples 20..80 (overlap 60), then the trainer blocks 100..130.
    fn scripted() -> Snapshot {
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::EPOCH, crate::NO_BATCH, 0, 200);
        t.record_span(spans::STAGE_TRAIN, 0, 0, 100);
        t.record_span(spans::STAGE_PREP, 1, 100, 130);
        t.record_span(spans::STAGE_TRANSFER, 1, 130, 150);
        let worker = std::thread::Builder::new()
            .name("w".into())
            .spawn({
                let t = t.clone();
                move || {
                    t.record_span(spans::PREP_SAMPLE, 1, 20, 70);
                    t.record_span(spans::PREP_SLICE, 1, 70, 80);
                    t.record_span(spans::SLOT_WAIT, 1, 80, 95);
                }
            })
            .unwrap();
        worker.join().unwrap();
        t.snapshot()
    }

    #[test]
    fn stall_attribution_sums_to_the_window() {
        let r = analyze(&scripted());
        assert_eq!(r.window_ns, 200);
        assert_eq!(r.prep_ns, 30);
        assert_eq!(r.transfer_ns, 20);
        assert_eq!(r.compute_ns, 100);
        assert_eq!(r.other_ns, 50);
        let total: f64 = r.stage_pcts().iter().sum();
        assert!((total - 100.0).abs() < 1e-9, "{total}");
        // The `other` bucket decomposes into named categories: the trainer
        // was busy 0..150 inside the 0..200 window, so all 50 ns of other
        // is epoch-tail shutdown.
        assert_eq!(r.fill_ns, 0);
        assert_eq!(r.idle_ns, 0);
        assert_eq!(r.shutdown_ns, 50);
        assert_eq!(r.fill_ns + r.idle_ns + r.shutdown_ns, r.other_ns);
    }

    #[test]
    fn overlap_is_the_intersection_of_prep_and_compute() {
        let r = analyze(&scripted());
        assert_eq!(r.worker_sample_ns, 50);
        assert_eq!(r.worker_slice_ns, 10);
        assert_eq!(r.worker_slot_wait_ns, 15);
        // Worker busy 20..80 intersected with compute 0..100 = 60.
        assert_eq!(r.overlap_ns, 60);
        assert!((r.overlap_frac() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn occupancy_excludes_the_epoch_wrapper() {
        let r = analyze(&scripted());
        let trainer = r.trainer_tid.unwrap();
        let t = r.occupancy.iter().find(|o| o.tid == trainer).unwrap();
        // stage spans 0..150, not the 0..200 epoch wrapper.
        assert_eq!(t.busy_ns, 150);
        let w = r.occupancy.iter().find(|o| o.tid != trainer).unwrap();
        assert_eq!(w.busy_ns, 75);
        assert_eq!(w.name, "w");
    }

    /// The threaded stage-graph layout: `epoch` on the orchestrating main
    /// thread, compute (+ its prep wait) on a dedicated stage thread,
    /// transfer on another, sampling on a worker. Known overlap by
    /// construction: sample 20..60 (40) ∪ transfer 60..80 (20) against
    /// compute 0..100 → 60 of 100 compute ns → 0.6.
    fn scripted_threaded() -> Snapshot {
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::EPOCH, crate::NO_BATCH, 0, 200);
        let spawn = |name: &str, f: Box<dyn FnOnce(&Trace) + Send>| {
            let t = t.clone();
            std::thread::Builder::new()
                .name(name.into())
                .spawn(move || f(&t))
                .unwrap()
                .join()
                .unwrap();
        };
        spawn(
            "compute",
            Box::new(|t| {
                t.record_span(spans::STAGE_TRAIN, 0, 0, 100);
                t.record_span(spans::STAGE_PREP, 1, 100, 130);
                t.record_span(spans::STAGE_TRAIN, 1, 130, 190);
            }),
        );
        spawn(
            "transfer",
            Box::new(|t| {
                t.record_span(spans::STAGE_TRANSFER, 1, 60, 80);
            }),
        );
        spawn(
            "sampler",
            Box::new(|t| {
                t.record_span(spans::PREP_SAMPLE, 1, 20, 60);
            }),
        );
        t.snapshot()
    }

    #[test]
    fn cross_thread_overlap_is_credited_at_known_fraction() {
        let snap = scripted_threaded();
        let r = analyze(&snap);
        // The trainer is the stage.train recorder, NOT the epoch recorder:
        // resolving via `epoch` first is the regression that reported
        // overlap_frac 0 for every threaded run.
        let compute_tid = snap.spans(spans::STAGE_TRAIN).next().unwrap().tid;
        let epoch_tid = snap.spans(spans::EPOCH).next().unwrap().tid;
        assert_ne!(compute_tid, epoch_tid);
        assert_eq!(r.trainer_tid, Some(compute_tid));
        // The epoch wrapper still defines the window even off-trainer.
        assert_eq!(r.window_ns, 200);
        assert_eq!(r.compute_ns, 160);
        assert_eq!(r.prep_ns, 30);
        // Transfer happened on its own stage thread — pipelined away from
        // the trainer, so it contributes to overlap, not to trainer stall.
        assert_eq!(r.transfer_ns, 0);
        // sample 20..60 ∪ transfer 60..80 vs compute 0..100 ∪ 130..190.
        assert_eq!(r.overlap_ns, 60);
        assert!((r.overlap_frac() - 60.0 / 160.0).abs() < 1e-9);
        // other = 200 - 190 = 10, all after the trainer's last activity.
        assert_eq!(r.other_ns, 10);
        assert_eq!(r.shutdown_ns, 10);
        assert_eq!(r.fill_ns, 0);
        assert_eq!(r.idle_ns, 0);
    }

    #[test]
    fn multi_epoch_threaded_runs_attribute_every_epochs_compute() {
        // The threaded executor spawns a fresh compute thread per epoch, so
        // `stage.train` lands on a different tid each epoch; single-tid
        // trainer resolution dropped everything after epoch 1.
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::EPOCH, crate::NO_BATCH, 0, 100);
        t.record_span(spans::EPOCH, crate::NO_BATCH, 100, 200);
        let spawn = |name: &str, f: Box<dyn FnOnce(&Trace) + Send>| {
            let t = t.clone();
            std::thread::Builder::new()
                .name(name.into())
                .spawn(move || f(&t))
                .unwrap()
                .join()
                .unwrap();
        };
        spawn(
            "compute-e0",
            Box::new(|t| {
                t.record_span(spans::WARMUP, 0, 0, 10);
                t.record_span(spans::STAGE_TRAIN, 0, 10, 90);
            }),
        );
        spawn(
            "compute-e1",
            Box::new(|t| {
                t.record_span(spans::STAGE_TRAIN, 1, 110, 195);
            }),
        );
        let r = analyze(&t.snapshot());
        assert_eq!(r.window_ns, 200);
        // Both epochs' compute counted: 80 + 85.
        assert_eq!(r.compute_ns, 165);
        assert_eq!(r.other_ns, 35);
        // Epoch 0 lead-in 0..10 (covered by the warm-up wait) and epoch 1
        // lead-in 100..110 are fill; tails 90..100 + 195..200 are shutdown.
        assert_eq!(r.fill_ns, 20);
        assert_eq!(r.shutdown_ns, 15);
        assert_eq!(r.idle_ns, 0);
        assert_eq!(r.fill_ns + r.idle_ns + r.shutdown_ns, r.other_ns);
    }

    #[test]
    fn overlap_frac_against_compute_only_window() {
        // Restrict to the first compute interval: overlap 60 of compute
        // 100 → exactly the hand-computed 0.6.
        let snap = scripted_threaded().window(0, 100);
        let r = analyze(&snap);
        assert_eq!(r.compute_ns, 100);
        assert_eq!(r.overlap_ns, 60);
        assert!((r.overlap_frac() - 0.6).abs() < 1e-9, "{}", r.overlap_frac());
    }

    #[test]
    fn serial_schedule_still_reports_zero_overlap() {
        // The inline schedule's shape: prep wait, transfer, and compute all
        // on one thread, worker spans only inside the trainer's waits —
        // nothing concurrent with compute, so overlap must stay 0.
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::EPOCH, crate::NO_BATCH, 0, 300);
        t.record_span(spans::STAGE_PREP, 0, 0, 100);
        t.record_span(spans::STAGE_TRANSFER, 0, 100, 120);
        t.record_span(spans::STAGE_TRAIN, 0, 120, 200);
        let worker = std::thread::Builder::new()
            .name("w".into())
            .spawn({
                let t = t.clone();
                move || t.record_span(spans::PREP_SAMPLE, 0, 10, 90)
            })
            .unwrap();
        worker.join().unwrap();
        let r = analyze(&t.snapshot());
        assert_eq!(r.overlap_ns, 0);
        assert_eq!(r.overlap_frac(), 0.0);
        assert_eq!(r.transfer_ns, 20);
    }

    #[test]
    fn empty_snapshot_analyzes_to_zero() {
        let r = analyze(&Snapshot::default());
        assert_eq!(r.window_ns, 0);
        assert_eq!(r.stage_pcts(), [0.0; 4]);
        assert_eq!(r.overlap_frac(), 0.0);
    }
}
