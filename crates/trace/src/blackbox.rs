//! Always-on flight recorder: bounded per-thread rings of recent events,
//! dumped to disk when something goes wrong.
//!
//! A [`crate::Trace`] built with [`crate::Trace::with_blackbox`] mirrors
//! every recorded event into the recording thread's [`Shard`] — a ring of
//! [`crate::SpanEvent`]s whose storage is preallocated when the thread
//! first registers, so steady-state writes are an uncontended owner-thread
//! mutex acquire plus one index assignment: no allocation, no contention
//! (pinned by the counting-allocator test in `tests/trace_overhead.rs`).
//! The crate forbids `unsafe`, so "lock-free" here is the practical kind —
//! each ring's mutex is only ever touched by its owner thread until a dump
//! walks the shards.
//!
//! Beyond bounding memory, the rings capture what the central registry
//! cannot yet see: events still sitting in other threads' unflushed
//! thread-local buffers at the moment of a fault.
//!
//! Dumps fire on stage panic-budget exhaustion, pipeline poison, serve
//! circuit-breaker open, and fault-site fires (the callers hold the
//! trigger; [`Blackbox::dump`] is the mechanism). A dump is one JSON file
//! containing the trigger metadata, the failing batch's causal chain
//! (via [`crate::critical_path`]), the ring contents as a Chrome trace,
//! and the full metrics snapshot — everything needed to diagnose a dead
//! run post-mortem.

use crate::analysis::Snapshot;
use crate::critical_path;
use crate::export;
use crate::names;
use crate::span::{SpanEvent, Trace};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Flight-recorder configuration.
#[derive(Clone, Debug)]
pub struct BlackboxConfig {
    /// Ring capacity per recording thread, in events. The default (4096)
    /// holds several epochs of per-batch pipeline events at ~6 events per
    /// batch per thread while costing under 200 KiB per thread.
    pub capacity: usize,
    /// Directory dump files are written into (created on first dump).
    pub dir: String,
}

impl Default for BlackboxConfig {
    fn default() -> Self {
        BlackboxConfig {
            capacity: 4096,
            dir: "target/blackbox".to_string(),
        }
    }
}

fn lock_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Ring and path slots hold plain data; a panicked writer cannot corrupt
    // them, and the flight recorder must keep working *especially* after
    // panics — that is its job.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Fixed-capacity overwrite-oldest event ring.
#[derive(Debug)]
struct Ring {
    buf: Vec<SpanEvent>,
    /// Overwrite cursor once the buffer is full (oldest entry's slot).
    next: usize,
    cap: usize,
}

/// One thread's bounded ring of recent events. Writes come only from the
/// owning thread's recorder; reads only from a dumping thread.
#[derive(Debug)]
pub(crate) struct Shard {
    tid: u32,
    ring: Mutex<Ring>,
}

impl Shard {
    /// Appends `ev`, overwriting the oldest entry when full. The buffer was
    /// preallocated at registration, so the push branch never reallocates.
    pub(crate) fn write(&self, ev: SpanEvent) {
        let mut r = lock_tolerant(&self.ring);
        if r.buf.len() < r.cap {
            r.buf.push(ev);
        } else if r.cap > 0 {
            let i = r.next;
            if let Some(slot) = r.buf.get_mut(i) {
                *slot = ev;
            }
            r.next = (i + 1) % r.cap;
        }
    }

    /// The ring contents, oldest first.
    fn gather(&self) -> Vec<SpanEvent> {
        let r = lock_tolerant(&self.ring);
        if r.buf.len() < r.cap {
            r.buf.clone()
        } else {
            r.buf
                .iter()
                .skip(r.next)
                .chain(r.buf.iter().take(r.next))
                .copied()
                .collect()
        }
    }
}

/// Shared flight-recorder state hanging off an enabled trace.
#[derive(Debug)]
pub(crate) struct BlackboxInner {
    capacity: usize,
    dir: String,
    shards: Mutex<Vec<Arc<Shard>>>,
    last: Mutex<Option<String>>,
}

impl BlackboxInner {
    pub(crate) fn new(cfg: BlackboxConfig) -> BlackboxInner {
        BlackboxInner {
            capacity: cfg.capacity,
            dir: cfg.dir,
            shards: Mutex::new(Vec::new()),
            last: Mutex::new(None),
        }
    }

    /// Creates (and retains) the ring shard for a newly registered thread.
    /// The full capacity is allocated here, off the hot path, so steady-state
    /// [`Shard::write`] calls never allocate.
    pub(crate) fn register_shard(&self, tid: u32) -> Arc<Shard> {
        let shard = Arc::new(Shard {
            tid,
            ring: Mutex::new(Ring {
                buf: Vec::with_capacity(self.capacity),
                next: 0,
                cap: self.capacity,
            }),
        });
        lock_tolerant(&self.shards).push(Arc::clone(&shard));
        shard
    }
}

/// Process-global dump sequence so concurrent traces never collide on a
/// file name (the deterministic alternative to a wall-clock timestamp,
/// which the lint's determinism rule forbids here anyway).
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Handle to a trace's attached flight recorder (see the module docs).
#[derive(Clone, Debug)]
pub struct Blackbox {
    inner: Arc<BlackboxInner>,
}

impl Blackbox {
    pub(crate) fn from_inner(inner: Arc<BlackboxInner>) -> Blackbox {
        Blackbox { inner }
    }

    /// Everything currently in the rings across all threads, merged and
    /// sorted like a snapshot (`(start_ns, tid, name)`).
    pub fn recent_events(&self) -> Vec<SpanEvent> {
        let shards: Vec<Arc<Shard>> = lock_tolerant(&self.inner.shards).clone();
        let mut by_tid = shards;
        by_tid.sort_by_key(|s| s.tid);
        let mut events: Vec<SpanEvent> = Vec::new();
        for s in &by_tid {
            events.extend(s.gather());
        }
        events.sort_by(|a, b| (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name)));
        events
    }

    /// Writes one dump file and returns its path (`None` if the filesystem
    /// refused; the recorder itself must never panic — it runs inside fault
    /// handlers). The dump records `reason`, the triggering `batch`, that
    /// batch's causal chain, the ring contents as an embedded Chrome trace,
    /// and the full metrics snapshot; it also ticks `blackbox.dumps` and
    /// emits a `blackbox.dump` instant on `trace`.
    pub fn dump(&self, trace: &Trace, reason: &str, batch: u64) -> Option<String> {
        let full = trace.snapshot();
        let events = self.recent_events();
        let ring_snap = Snapshot {
            events,
            threads: full.threads.clone(),
            metrics: full.metrics.clone(),
        };
        let chains = critical_path::batch_chains(&ring_snap);
        let chain = chains.iter().find(|c| c.batch == batch);

        // Relaxed: the sequence only needs uniqueness, not ordering.
        let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n\"blackbox\": {{\"reason\": \"{}\", \"seq\": {seq}, \"batch\": {batch}, \
             \"ring_events\": {}}},\n\"chain\": [",
            export::json_escape(reason),
            ring_snap.events.len()
        );
        if let Some(c) = chain {
            for (i, e) in c.edges.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n  {{\"kind\": \"{}\", \"name\": \"{}\", \"tid\": {}, \
                     \"start_ns\": {}, \"end_ns\": {}}}",
                    e.kind.label(),
                    export::json_escape(e.name),
                    e.tid,
                    e.start_ns,
                    e.end_ns
                );
            }
        }
        out.push_str("\n],\n\"trace\": ");
        out.push_str(export::chrome_trace(&ring_snap).trim_end());
        out.push_str(",\n\"metrics\": ");
        out.push_str(export::metrics_json(&ring_snap).trim_end());
        out.push_str("\n}\n");

        if std::fs::create_dir_all(&self.inner.dir).is_err() {
            return None;
        }
        let path = format!("{}/blackbox-{seq}.json", self.inner.dir);
        if std::fs::write(&path, &out).is_err() {
            return None;
        }
        *lock_tolerant(&self.inner.last) = Some(path.clone());
        trace.counter(names::counters::BLACKBOX_DUMPS).inc();
        trace.instant(names::events::BLACKBOX_DUMP, batch);
        Some(path)
    }

    /// Path of the most recent successful dump from this recorder.
    pub fn last_dump(&self) -> Option<String> {
        lock_tolerant(&self.inner.last).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::names::spans;

    fn test_cfg(name: &str, capacity: usize) -> BlackboxConfig {
        BlackboxConfig {
            capacity,
            dir: format!(
                "{}/blackbox-test-{name}",
                std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into())
            ),
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_gathers_in_order() {
        let t = Trace::with_blackbox(Clock::virtual_with_tick(10), test_cfg("ring", 4));
        for b in 0..7u64 {
            t.record_span(spans::STAGE_TRAIN, b, b * 10, b * 10 + 5);
        }
        let bb = t.blackbox().unwrap();
        let recent = bb.recent_events();
        // Capacity 4: batches 3..=6 survive, oldest first.
        assert_eq!(recent.len(), 4);
        assert_eq!(
            recent.iter().map(|e| e.batch).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
    }

    #[test]
    fn dump_is_parseable_and_contains_the_chain() {
        let t = Trace::with_blackbox(Clock::virtual_manual(), test_cfg("dump", 64));
        t.record_span(spans::WARMUP, 2, 0, 10);
        t.record_span(spans::PREP_SAMPLE, 2, 10, 40);
        t.record_span(spans::STAGE_TRAIN, 2, 50, 80);
        t.record_span(spans::STAGE_TRAIN, 3, 80, 90);
        let bb = t.blackbox().unwrap();
        let path = bb.dump(&t, names::events::PIPE_POISONED, 2).unwrap();
        assert_eq!(bb.last_dump().as_deref(), Some(path.as_str()));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(&text).expect("dump must be valid JSON");
        let meta = doc.get("blackbox").unwrap();
        assert_eq!(
            meta.get("reason").unwrap().as_str(),
            Some(names::events::PIPE_POISONED)
        );
        assert_eq!(meta.get("batch").unwrap().as_num(), Some(2.0));
        let chain = doc.get("chain").unwrap().as_arr().unwrap();
        assert_eq!(chain.len(), 3, "batch 2 has three edges");
        assert!(text.contains("\"kind\": \"fill\""));
        assert!(text.contains("\"kind\": \"stage_work\""));
        // The embedded trace and metrics are full JSON documents.
        assert!(doc.get("trace").unwrap().get("traceEvents").is_some());
        assert!(doc.get("metrics").unwrap().get("counters").is_some());
        // Dumping also ticks the counter and emits the instant.
        let snap = t.snapshot();
        assert_eq!(snap.metrics.counter(names::counters::BLACKBOX_DUMPS), 1);
        assert_eq!(snap.count(names::events::BLACKBOX_DUMP), 1);
    }

    #[test]
    fn rings_capture_unflushed_events_from_other_threads() {
        let t = Trace::with_blackbox(Clock::virtual_manual(), test_cfg("unflushed", 64));
        // A worker records one event and *stays alive* (parked on a channel),
        // so its thread-local buffer has not flushed to the registry yet.
        let (tx, rx) = std::sync::mpsc::channel::<()>();
        let (ready_tx, ready_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn({
            let t = t.clone();
            move || {
                t.record_span(spans::PREP_SAMPLE, 5, 100, 200);
                ready_tx.send(()).ok();
                rx.recv().ok();
            }
        });
        ready_rx.recv().unwrap();
        let bb = t.blackbox().unwrap();
        let recent = bb.recent_events();
        assert!(
            recent.iter().any(|e| e.batch == 5),
            "ring must see the unflushed worker event"
        );
        tx.send(()).unwrap();
        worker.join().unwrap();
    }
}
