//! The workspace's single sanctioned time source.
//!
//! Every timed code path outside `crates/sim`, `crates/bench`, and CLI entry
//! points reads time through [`Clock`], never through `std::time::Instant`
//! directly (enforced by `salient-lint determinism`). A [`Clock`] is either
//! the process monotonic clock or a manually advanced [`VirtualClock`], so
//! any instrumented subsystem can be driven deterministically in tests: the
//! same code path, the same spans, the same reports — with scripted time.
//!
//! Timestamps are `u64` nanoseconds since the clock's epoch (process start
//! for the monotonic clock, 0 for a fresh virtual clock).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Nanoseconds since the process-wide monotonic anchor.
fn monotonic_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    let anchor = *ANCHOR.get_or_init(Instant::now);
    // Saturate instead of wrapping: u64 nanoseconds cover ~584 years.
    u64::try_from(anchor.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A time source: real monotonic time, or a test-controlled virtual clock.
///
/// Cloning is cheap (an `Arc` at most); every component of one pipeline run
/// should share clones of the same clock so their timestamps are mutually
/// ordered.
///
/// # Examples
///
/// ```
/// use salient_trace::{Clock, VirtualClock};
///
/// let real = Clock::monotonic();
/// let a = real.now_ns();
/// assert!(real.now_ns() >= a);
///
/// let clock = Clock::virtual_with_tick(1_000); // each read advances 1 µs
/// assert_eq!(clock.now_ns(), 0);
/// assert_eq!(clock.now_ns(), 1_000);
/// ```
#[derive(Clone, Debug)]
pub enum Clock {
    /// The process monotonic clock (anchored at first use).
    Monotonic,
    /// A manually advanced clock shared by reference.
    Virtual(Arc<VirtualClock>),
}

impl Default for Clock {
    fn default() -> Self {
        Clock::Monotonic
    }
}

impl Clock {
    /// The real monotonic clock.
    pub fn monotonic() -> Clock {
        Clock::Monotonic
    }

    /// A fresh virtual clock starting at 0 that only moves when
    /// [`VirtualClock::advance`] or [`VirtualClock::set`] is called.
    pub fn virtual_manual() -> Clock {
        Clock::Virtual(Arc::new(VirtualClock::new(0)))
    }

    /// A fresh virtual clock that auto-advances by `tick_ns` on every read,
    /// so instrumented code observes deterministic nonzero durations without
    /// any manual scripting. The first read returns 0.
    pub fn virtual_with_tick(tick_ns: u64) -> Clock {
        Clock::Virtual(Arc::new(VirtualClock::with_tick(0, tick_ns)))
    }

    /// The shared virtual clock, if this is one (for scripting from tests).
    pub fn as_virtual(&self) -> Option<&Arc<VirtualClock>> {
        match self {
            Clock::Monotonic => None,
            Clock::Virtual(v) => Some(v),
        }
    }

    /// Current time in nanoseconds since the clock epoch.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic => monotonic_ns(),
            Clock::Virtual(v) => v.now_ns(),
        }
    }
}

/// A deterministic, manually advanced clock.
///
/// Readable from any thread; [`now_ns`](VirtualClock::now_ns) optionally
/// auto-advances by a fixed tick per read, which gives every span a nonzero,
/// load-independent duration — the backbone of the deterministic
/// observability tests.
#[derive(Debug)]
pub struct VirtualClock {
    now: AtomicU64,
    tick: u64,
}

impl VirtualClock {
    /// A clock frozen at `start_ns` until advanced.
    pub fn new(start_ns: u64) -> VirtualClock {
        VirtualClock { now: AtomicU64::new(start_ns), tick: 0 }
    }

    /// A clock that advances by `tick_ns` after every read.
    pub fn with_tick(start_ns: u64, tick_ns: u64) -> VirtualClock {
        VirtualClock { now: AtomicU64::new(start_ns), tick: tick_ns }
    }

    /// Reads the clock (and auto-advances it by the configured tick).
    pub fn now_ns(&self) -> u64 {
        if self.tick == 0 {
            // Relaxed is sufficient: the value is a monotone logical
            // timestamp; no other memory is published through this load.
            self.now.load(Ordering::Relaxed)
        } else {
            // Relaxed fetch_add: each reader gets a unique monotone stamp;
            // ordering with unrelated memory is irrelevant.
            self.now.fetch_add(self.tick, Ordering::Relaxed)
        }
    }

    /// Moves the clock forward by `delta_ns`.
    pub fn advance(&self, delta_ns: u64) {
        // Relaxed: monotone logical time, no cross-thread data guarded.
        self.now.fetch_add(delta_ns, Ordering::Relaxed);
    }

    /// Jumps the clock to an absolute time (must not move backwards for the
    /// reports to stay meaningful; this is not checked).
    pub fn set(&self, now_ns: u64) {
        // Relaxed: see `advance`.
        self.now.store(now_ns, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_never_regresses() {
        let c = Clock::monotonic();
        let mut prev = c.now_ns();
        for _ in 0..100 {
            let t = c.now_ns();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = Clock::virtual_manual();
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 0);
        c.as_virtual().unwrap().advance(250);
        assert_eq!(c.now_ns(), 250);
        c.as_virtual().unwrap().set(1_000);
        assert_eq!(c.now_ns(), 1_000);
    }

    #[test]
    fn ticking_clock_is_deterministic() {
        let c = Clock::virtual_with_tick(7);
        let reads: Vec<u64> = (0..5).map(|_| c.now_ns()).collect();
        assert_eq!(reads, vec![0, 7, 14, 21, 28]);
    }

    #[test]
    fn clones_share_the_virtual_clock() {
        let c = Clock::virtual_manual();
        let d = c.clone();
        c.as_virtual().unwrap().advance(5);
        assert_eq!(d.now_ns(), 5);
    }
}
