//! Per-batch causal critical-path reconstruction and what-if projection.
//!
//! Every instrumented pipeline event is tagged with a batch id, so a
//! snapshot already contains each batch's *causal chain*: the ordered,
//! typed edges (stage work, queue wait, backpressure, ring send/recv,
//! pipeline fill) it traversed from the sampler to the optimizer step.
//! [`batch_chains`] reconstructs those chains, [`BatchChain::attribute`]
//! charges every nanosecond of a batch's latency to exactly one named
//! category (a priority sweep: doing work beats being blocked, so overlap
//! between a work span and the wait that wraps it counts as work; a gap
//! with no span active but a later edge still ahead is the batch parked in
//! a queue, so it is inferred as queue wait), and
//! [`Replay`] re-executes recorded chains under the pipeline's structural
//! constraints (bounded transfer queue, prefetch depth, worker lanes) with
//! any stage sped up by a chosen factor — the *what-if projector* that
//! predicts what removing a bottleneck would buy before anyone builds it.
//! The projection is validated against the `sim` plane's Pipelined
//! schedule on the same shape constants in `tests/critical_path.rs`.

use crate::analysis::Snapshot;
use crate::names::spans;
use crate::span::{EventKind, NO_BATCH};

/// The causal role of one edge on a batch's path through the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Pipeline fill: a run's first wait, before steady state.
    Fill,
    /// A consumer blocked on an empty input queue (or a worker blocked on a
    /// free staging slot).
    QueueWait,
    /// Actual stage work (sample, slice, copy, transfer, compute).
    StageWork,
    /// A producer blocked pushing into a full bounded queue.
    Backpressure,
    /// A DDP ring-link send.
    RingSend,
    /// A DDP ring-link receive.
    RingRecv,
}

impl EdgeKind {
    /// Stable lower-case label used by exporters.
    pub fn label(self) -> &'static str {
        match self {
            EdgeKind::Fill => "fill",
            EdgeKind::QueueWait => "queue_wait",
            EdgeKind::StageWork => "stage_work",
            EdgeKind::Backpressure => "backpressure",
            EdgeKind::RingSend => "ring_send",
            EdgeKind::RingRecv => "ring_recv",
        }
    }

    /// Attribution priority when edges overlap in time: a batch being
    /// worked on is *progressing* even if a wrapper wait span also covers
    /// the instant, so work outranks every flavor of blocking.
    fn priority(self) -> u8 {
        match self {
            EdgeKind::StageWork => 5,
            EdgeKind::Backpressure => 4,
            EdgeKind::RingSend | EdgeKind::RingRecv => 3,
            EdgeKind::QueueWait => 2,
            EdgeKind::Fill => 1,
        }
    }
}

/// Classifies a span name into its causal edge kind.
pub fn classify(name: &str) -> EdgeKind {
    if name == spans::WARMUP {
        EdgeKind::Fill
    } else if name == spans::PIPE_SEND {
        EdgeKind::Backpressure
    } else if name == spans::DDP_RING_SEND {
        EdgeKind::RingSend
    } else if name == spans::DDP_RING_RECV {
        EdgeKind::RingRecv
    } else if name == spans::STAGE_PREP || name == spans::PIPE_WAIT || name == spans::SLOT_WAIT {
        EdgeKind::QueueWait
    } else {
        EdgeKind::StageWork
    }
}

/// One typed edge on a batch's causal chain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Causal role.
    pub kind: EdgeKind,
    /// The recorded span name this edge came from.
    pub name: &'static str,
    /// Recording thread.
    pub tid: u32,
    /// Edge start (clock nanoseconds).
    pub start_ns: u64,
    /// Edge end.
    pub end_ns: u64,
}

impl Edge {
    /// Edge duration in nanoseconds.
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// One batch's reconstructed causal chain, edges sorted by start time.
#[derive(Clone, Debug)]
pub struct BatchChain {
    /// The batch id every edge is tagged with.
    pub batch: u64,
    /// Typed edges, sorted by `(start_ns, tid, name)`.
    pub edges: Vec<Edge>,
}

/// Where one batch's (or a whole run's) latency went, by named category.
/// `total_ns` is the chain extent; the six category fields partition it
/// exactly (`queued_ns` is the uncovered remainder: the item sat in a
/// queue with no recorded span active).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainAttribution {
    /// Time under a stage-work edge.
    pub stage_work_ns: u64,
    /// Time blocked pushing into a full queue.
    pub backpressure_ns: u64,
    /// Time in DDP ring sends/receives.
    pub ring_ns: u64,
    /// Time waiting in a queue: a consumer blocked on this batch, or the
    /// batch parked between stages (no span active, a later edge ahead).
    pub queue_wait_ns: u64,
    /// Pipeline-fill time.
    pub fill_ns: u64,
    /// Unattributable residual: uncovered time with no later edge to infer
    /// a cause from. Extents end at the last edge, so this stays ~0; it is
    /// the honest "unknown" bucket the bench gates below 10%.
    pub queued_ns: u64,
    /// Chain extent (first edge start to last edge end).
    pub total_ns: u64,
}

impl ChainAttribution {
    /// Accumulates another attribution (category-wise sum).
    pub fn add(&mut self, o: &ChainAttribution) {
        self.stage_work_ns += o.stage_work_ns;
        self.backpressure_ns += o.backpressure_ns;
        self.ring_ns += o.ring_ns;
        self.queue_wait_ns += o.queue_wait_ns;
        self.fill_ns += o.fill_ns;
        self.queued_ns += o.queued_ns;
        self.total_ns += o.total_ns;
    }

    /// `(label, ns)` pairs for every category, export order.
    pub fn categories(&self) -> [(&'static str, u64); 6] {
        [
            ("stage_work", self.stage_work_ns),
            ("backpressure", self.backpressure_ns),
            ("ring", self.ring_ns),
            ("queue_wait", self.queue_wait_ns),
            ("fill", self.fill_ns),
            ("queued", self.queued_ns),
        ]
    }
}

impl BatchChain {
    /// `(first start, last end)` over the chain's edges.
    pub fn extent(&self) -> Option<(u64, u64)> {
        let lo = self.edges.iter().map(|e| e.start_ns).min()?;
        let hi = self.edges.iter().map(|e| e.end_ns).max()?;
        Some((lo, hi))
    }

    /// Charges every nanosecond of the chain extent to one category via a
    /// priority sweep over edge boundaries (see [`EdgeKind::priority`]).
    pub fn attribute(&self) -> ChainAttribution {
        let mut a = ChainAttribution::default();
        let (lo, hi) = match self.extent() {
            Some(x) => x,
            None => return a,
        };
        a.total_ns = hi - lo;
        let mut cuts: Vec<u64> = Vec::with_capacity(self.edges.len() * 2);
        for e in &self.edges {
            cuts.push(e.start_ns);
            cuts.push(e.end_ns);
        }
        cuts.sort_unstable();
        cuts.dedup();
        let mut prev: Option<u64> = None;
        for &t in &cuts {
            if let Some(p) = prev {
                if t > p {
                    // An edge is active over [p, t] iff it covers the whole
                    // slice (cuts contain every boundary, so partial overlap
                    // is impossible).
                    let best = self
                        .edges
                        .iter()
                        .filter(|e| e.start_ns <= p && e.end_ns >= t)
                        .map(|e| e.kind)
                        .max_by_key(|k| k.priority());
                    let d = t - p;
                    match best {
                        Some(EdgeKind::StageWork) => a.stage_work_ns += d,
                        Some(EdgeKind::Backpressure) => a.backpressure_ns += d,
                        Some(EdgeKind::RingSend) | Some(EdgeKind::RingRecv) => a.ring_ns += d,
                        Some(EdgeKind::QueueWait) => a.queue_wait_ns += d,
                        Some(EdgeKind::Fill) => a.fill_ns += d,
                        // No span active. If a later edge of this chain is
                        // still ahead (t < hi), the batch is parked in a
                        // queue waiting for the next stage to pick it up —
                        // infer queue wait. Otherwise nothing can be
                        // inferred and the time stays unattributed.
                        None if t < hi => a.queue_wait_ns += d,
                        None => a.queued_ns += d,
                    }
                }
            }
            prev = Some(t);
        }
        a
    }
}

/// Reconstructs every batch's causal chain from a snapshot: all interval
/// events tagged with a real batch id, grouped by batch, edges sorted by
/// start time, chains sorted by batch id.
pub fn batch_chains(snap: &Snapshot) -> Vec<BatchChain> {
    let mut chains: Vec<BatchChain> = Vec::new();
    // Snapshot events are pre-sorted by (start_ns, tid, name), so pushing
    // in order keeps each chain's edges sorted.
    for e in &snap.events {
        if e.kind != EventKind::Span || e.batch == NO_BATCH {
            continue;
        }
        let edge = Edge {
            kind: classify(e.name),
            name: e.name,
            tid: e.tid,
            start_ns: e.start_ns,
            end_ns: e.end_ns,
        };
        match chains.iter_mut().find(|c| c.batch == e.batch) {
            Some(c) => c.edges.push(edge),
            None => chains.push(BatchChain {
                batch: e.batch,
                edges: vec![edge],
            }),
        }
    }
    chains.sort_by_key(|c| c.batch);
    chains
}

/// Category-wise sum of every chain's attribution.
pub fn summarize(chains: &[BatchChain]) -> ChainAttribution {
    let mut total = ChainAttribution::default();
    for c in chains {
        total.add(&c.attribute());
    }
    total
}

/// A replayable pipeline model extracted from recorded chains: per-stage
/// per-batch durations plus the structural constraints the real executor
/// ran under (worker lanes, bounded transfer queue, prefetch depth).
/// [`Replay::what_if`] re-executes it with one stage sped up by a factor
/// and reports the projected makespan — the causal answer to "what would
/// making stage X k-times faster buy end to end?".
#[derive(Clone, Debug)]
pub struct Replay {
    /// Stage name + lane count (parallel executors), pipeline order.
    stages: Vec<(String, usize)>,
    /// `dur_ns[stage][batch]` recorded durations.
    dur_ns: Vec<Vec<u64>>,
    /// Bounded-queue capacity ahead of the final stage: batch `b` of the
    /// second-to-last stage cannot start until batch `b - cap - 1` left the
    /// last stage (double buffering).
    queue_cap: usize,
    /// Prefetch depth: stage-0 batch `b` cannot start before batch
    /// `b - prefetch` finished the last stage (bounded work-ahead);
    /// 0 disables the constraint.
    prefetch: usize,
}

/// One what-if projection result.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WhatIf {
    /// Replayed makespan with recorded durations.
    pub baseline_ns: u64,
    /// Replayed makespan with the chosen stage scaled.
    pub projected_ns: u64,
    /// `baseline / projected` — the predicted end-to-end speedup.
    pub speedup: f64,
}

impl Replay {
    /// A replay where every batch of a stage has the same duration — the
    /// shape-constant form used to validate against the sim plane.
    pub fn uniform(
        stages: &[(&str, usize)],
        durs: &[u64],
        batches: usize,
        queue_cap: usize,
        prefetch: usize,
    ) -> Replay {
        Replay {
            stages: stages.iter().map(|(n, l)| (n.to_string(), *l)).collect(),
            dur_ns: durs.iter().map(|&d| vec![d; batches]).collect(),
            queue_cap,
            prefetch,
        }
    }

    /// Extracts the 3-stage training replay (prep / transfer / train) from
    /// recorded batch-tagged spans; `None` when the snapshot has no tagged
    /// batches. Prep lanes = the number of distinct threads that recorded
    /// prep work.
    pub fn from_snapshot(snap: &Snapshot, queue_cap: usize, prefetch: usize) -> Option<Replay> {
        let mut batches: Vec<u64> = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && e.batch != NO_BATCH)
            .map(|e| e.batch)
            .collect();
        batches.sort_unstable();
        batches.dedup();
        if batches.is_empty() {
            return None;
        }
        let sum_for = |names: &[&str], b: u64| -> u64 {
            snap.events
                .iter()
                .filter(|e| {
                    e.kind == EventKind::Span && e.batch == b && names.contains(&e.name)
                })
                .map(|e| e.dur_ns())
                .sum()
        };
        let prep_names = [spans::PREP_SAMPLE, spans::PREP_SLICE, spans::PREP_COPY];
        let prep: Vec<u64> = batches.iter().map(|&b| sum_for(&prep_names, b)).collect();
        let transfer: Vec<u64> = batches
            .iter()
            .map(|&b| sum_for(&[spans::STAGE_TRANSFER], b))
            .collect();
        let train: Vec<u64> = batches
            .iter()
            .map(|&b| sum_for(&[spans::STAGE_TRAIN], b))
            .collect();
        let mut prep_tids: Vec<u32> = snap
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Span && prep_names.contains(&e.name))
            .map(|e| e.tid)
            .collect();
        prep_tids.sort_unstable();
        prep_tids.dedup();
        Some(Replay {
            stages: vec![
                ("prep".to_string(), prep_tids.len().max(1)),
                ("transfer".to_string(), 1),
                ("train".to_string(), 1),
            ],
            dur_ns: vec![prep, transfer, train],
            queue_cap,
            prefetch,
        })
    }

    /// Stage names in pipeline order.
    pub fn stage_names(&self) -> Vec<&str> {
        self.stages.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Replays the recorded chains under the structural constraints and
    /// returns the makespan.
    pub fn makespan_ns(&self) -> u64 {
        self.makespan_scaled(None, 1.0)
    }

    /// Replay with stage `stage`'s durations divided by `factor`.
    pub fn what_if(&self, stage: usize, factor: f64) -> WhatIf {
        let baseline_ns = self.makespan_ns();
        let projected_ns = self.makespan_scaled(Some(stage), factor);
        WhatIf {
            baseline_ns,
            projected_ns,
            speedup: if projected_ns == 0 {
                1.0
            } else {
                baseline_ns as f64 / projected_ns as f64
            },
        }
    }

    /// In-order greedy list schedule: batch-major, each stage picks its
    /// earliest-free lane; every dependency points at an earlier batch or
    /// an earlier stage of the same batch, so one pass suffices.
    fn makespan_scaled(&self, scaled: Option<usize>, factor: f64) -> u64 {
        let nstages = self.dur_ns.len();
        let batches = self.dur_ns.first().map(Vec::len).unwrap_or(0);
        if nstages == 0 || batches == 0 {
            return 0;
        }
        let last = nstages - 1;
        let mut finish: Vec<Vec<u64>> = vec![vec![0u64; batches]; nstages];
        let mut lane_free: Vec<Vec<u64>> = self
            .stages
            .iter()
            .map(|(_, l)| vec![0u64; (*l).max(1)])
            .collect();
        let fin = |f: &Vec<Vec<u64>>, s: usize, b: usize| -> u64 {
            f.get(s).and_then(|row| row.get(b)).copied().unwrap_or(0)
        };
        let mut makespan = 0u64;
        for b in 0..batches {
            for s in 0..nstages {
                let mut ready = 0u64;
                if s > 0 {
                    ready = ready.max(fin(&finish, s - 1, b));
                }
                if s == 0 && self.prefetch > 0 && b >= self.prefetch {
                    ready = ready.max(fin(&finish, last, b - self.prefetch));
                }
                if nstages >= 2 && s == nstages - 2 && b > self.queue_cap {
                    ready = ready.max(fin(&finish, last, b - self.queue_cap - 1));
                }
                let mut dur = self
                    .dur_ns
                    .get(s)
                    .and_then(|row| row.get(b))
                    .copied()
                    .unwrap_or(0);
                if scaled == Some(s) && factor > 0.0 {
                    dur = (dur as f64 / factor).round() as u64;
                }
                // Earliest-free lane for this stage.
                let lane = lane_free
                    .get(s)
                    .and_then(|lf| {
                        lf.iter()
                            .enumerate()
                            .min_by_key(|(_, &t)| t)
                            .map(|(i, &t)| (i, t))
                    })
                    .unwrap_or((0, 0));
                let start = ready.max(lane.1);
                let end = start + dur;
                if let Some(slot) = lane_free.get_mut(s).and_then(|lf| lf.get_mut(lane.0)) {
                    *slot = end;
                }
                if let Some(slot) = finish.get_mut(s).and_then(|row| row.get_mut(b)) {
                    *slot = end;
                }
                makespan = makespan.max(end);
            }
        }
        makespan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::span::Trace;

    #[test]
    fn classification_covers_the_edge_taxonomy() {
        assert_eq!(classify(spans::WARMUP), EdgeKind::Fill);
        assert_eq!(classify(spans::PIPE_SEND), EdgeKind::Backpressure);
        assert_eq!(classify(spans::DDP_RING_SEND), EdgeKind::RingSend);
        assert_eq!(classify(spans::DDP_RING_RECV), EdgeKind::RingRecv);
        assert_eq!(classify(spans::STAGE_PREP), EdgeKind::QueueWait);
        assert_eq!(classify(spans::PIPE_WAIT), EdgeKind::QueueWait);
        assert_eq!(classify(spans::SLOT_WAIT), EdgeKind::QueueWait);
        assert_eq!(classify(spans::STAGE_TRAIN), EdgeKind::StageWork);
        assert_eq!(classify(spans::PREP_SAMPLE), EdgeKind::StageWork);
    }

    /// Hand-built chain with a known path: fill 0..10, sample 10..40,
    /// backpressured send 40..45, in-queue (no span, compute edge ahead)
    /// 45..50 inferred as queue wait, compute 50..80.
    #[test]
    fn chain_attribution_is_exact_on_a_known_path() {
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::WARMUP, 0, 0, 10);
        t.record_span(spans::PREP_SAMPLE, 0, 10, 40);
        t.record_span(spans::PIPE_SEND, 0, 40, 45);
        t.record_span(spans::STAGE_TRAIN, 0, 50, 80);
        // A second batch to prove grouping.
        t.record_span(spans::STAGE_TRAIN, 1, 80, 90);
        let chains = batch_chains(&t.snapshot());
        assert_eq!(chains.len(), 2);
        let c0 = &chains[0];
        assert_eq!(c0.batch, 0);
        assert_eq!(c0.edges.len(), 4);
        assert_eq!(c0.extent(), Some((0, 80)));
        let a = c0.attribute();
        assert_eq!(a.fill_ns, 10);
        assert_eq!(a.stage_work_ns, 30 + 30);
        assert_eq!(a.backpressure_ns, 5);
        assert_eq!(a.queue_wait_ns, 5, "in-queue gap inferred as queue wait");
        assert_eq!(a.queued_ns, 0);
        assert_eq!(a.total_ns, 80);
        let sum: u64 = a.categories().iter().map(|(_, ns)| ns).sum();
        assert_eq!(sum, a.total_ns, "categories must partition the extent");
    }

    #[test]
    fn overlapping_wait_and_work_charge_to_work() {
        // A consumer wait span 0..100 wrapping the worker's sample 20..60:
        // the covered 40 ns are progress, only the rest is queue wait.
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::STAGE_PREP, 7, 0, 100);
        t.record_span(spans::PREP_SAMPLE, 7, 20, 60);
        let chains = batch_chains(&t.snapshot());
        let a = chains[0].attribute();
        assert_eq!(a.stage_work_ns, 40);
        assert_eq!(a.queue_wait_ns, 60);
        assert_eq!(a.total_ns, 100);
    }

    #[test]
    fn replay_makespan_matches_hand_schedule() {
        // 2 stages, 3 batches, durs 10/20, cap 2, no prefetch:
        // s0: 0-10, 10-20, 20-30; s1: 10-30, 30-50, 50-70.
        let r = Replay::uniform(&[("a", 1), ("b", 1)], &[10, 20], 3, 2, 0);
        assert_eq!(r.makespan_ns(), 70);
        // Speeding the bottleneck stage 2x: s1 becomes 10 ns — chains
        // serialize behind s0 instead: 0-10/10-20, 10-20/20-30, 20-30/30-40.
        let w = r.what_if(1, 2.0);
        assert_eq!(w.baseline_ns, 70);
        assert_eq!(w.projected_ns, 40);
        assert!((w.speedup - 70.0 / 40.0).abs() < 1e-9);
        // Speeding the non-bottleneck stage buys nothing at steady state.
        let w0 = r.what_if(0, 2.0);
        assert_eq!(w0.projected_ns, 65);
    }

    #[test]
    fn replay_respects_queue_cap_and_lanes() {
        // One-slot queue ahead of the last stage: transfer b=2 must wait for
        // train b=0 to finish (b - cap - 1 = 0).
        let r = Replay::uniform(&[("t", 1), ("c", 1)], &[1, 100], 4, 1, 0);
        // t0 0-1, c0 1-101; t1 1-2; t2 waits for c0 → starts 101.
        // c runs back-to-back: 1-101, 101-201, 201-301, 301-401.
        assert_eq!(r.makespan_ns(), 401);
        // Two lanes on a slow first stage halve its serial throughput.
        let one = Replay::uniform(&[("p", 1), ("c", 1)], &[50, 10], 4, 8, 0);
        let two = Replay::uniform(&[("p", 2), ("c", 1)], &[50, 10], 4, 8, 0);
        assert!(two.makespan_ns() < one.makespan_ns());
    }

    #[test]
    fn from_snapshot_extracts_per_batch_durations() {
        let t = Trace::new(Clock::virtual_manual());
        for b in 0..3u64 {
            let off = b * 100;
            t.record_span(spans::PREP_SAMPLE, b, off, off + 30);
            t.record_span(spans::PREP_SLICE, b, off + 30, off + 40);
            t.record_span(spans::STAGE_TRANSFER, b, off + 40, off + 50);
            t.record_span(spans::STAGE_TRAIN, b, off + 50, off + 90);
        }
        let r = Replay::from_snapshot(&t.snapshot(), 2, 0).unwrap();
        assert_eq!(r.stage_names(), ["prep", "transfer", "train"]);
        // prep 40, transfer 10, train 40 per batch; 1 lane each (single
        // recording thread) → pipeline bound by prep+train interleave.
        assert_eq!(r.dur_ns[0], vec![40, 40, 40]);
        assert_eq!(r.dur_ns[1], vec![10, 10, 10]);
        assert_eq!(r.dur_ns[2], vec![40, 40, 40]);
        assert!(r.makespan_ns() >= 3 * 40);
        assert!(Replay::from_snapshot(&Snapshot::default(), 2, 0).is_none());
    }
}
