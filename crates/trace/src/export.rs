//! Exporters: Chrome trace-event JSON, a metrics snapshot as JSON, and a
//! human-readable epoch report.
//!
//! All output is hand-rendered (the workspace is dependency-free) and
//! deterministic: events come pre-sorted from [`crate::Trace::snapshot`] and
//! every float is printed with fixed precision, so identical executions
//! under a [`crate::VirtualClock`] produce byte-identical files.

use crate::analysis::{PipelineReport, Snapshot};
use crate::span::{EventKind, NO_BATCH};
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats nanoseconds as Chrome-trace microseconds with nanosecond
/// precision (`ts`/`dur` fields are fractional microseconds).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the snapshot in the Chrome trace-event JSON format
/// (load it at `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// Spans become `"X"` (complete) events, point events become `"i"`
/// (instant) events, counter-track samples become `"C"` (counter) events
/// with the sampled value under `args.value` (rendered as a stacked track
/// in the timeline — queue depth over time), and each thread gets an
/// `"M"` `thread_name` metadata record. Batch ids are attached under
/// `args.batch`.
pub fn chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |s: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str("\n  ");
        out.push_str(&s);
    };
    for (tid, name) in snap.threads.iter().enumerate() {
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(name)
            ),
            &mut out,
        );
    }
    for e in &snap.events {
        let args = if e.batch == NO_BATCH {
            String::new()
        } else {
            format!(",\"args\":{{\"batch\":{}}}", e.batch)
        };
        let line = match e.kind {
            EventKind::Span => format!(
                "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"dur\":{}{}}}",
                json_escape(e.name),
                e.tid,
                us(e.start_ns),
                us(e.dur_ns()),
                args
            ),
            EventKind::Instant => format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"s\":\"t\"{}}}",
                json_escape(e.name),
                e.tid,
                us(e.start_ns),
                args
            ),
            // Counter samples carry their value in the batch field.
            EventKind::Counter => format!(
                "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":0,\"tid\":{},\
                 \"ts\":{},\"args\":{{\"value\":{}}}}}",
                json_escape(e.name),
                e.tid,
                us(e.start_ns),
                e.batch
            ),
        };
        emit(line, &mut out);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Renders every metric instrument as a JSON object:
/// `{"counters":{..},"gauges":{..},"histograms":{name:{count,sum,mean,p50,p95,p99}}}`.
pub fn metrics_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    for (i, (k, v)) in snap.metrics.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (k, v)) in snap.metrics.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {v}", json_escape(k));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (k, h)) in snap.metrics.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let (p50, p95, p99) = h.percentiles();
        let _ = write!(
            out,
            "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.1}, \
             \"p50\": {p50}, \"p95\": {p95}, \"p99\": {p99}}}",
            json_escape(k),
            h.count,
            h.sum,
            h.mean()
        );
    }
    out.push_str("\n  }\n}\n");
    out
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.3} ms", ns as f64 / 1e6)
}

/// Renders the human-readable stall-attribution report for one run.
pub fn render_report(r: &PipelineReport, snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "pipeline report (window {})", fmt_ms(r.window_ns));
    let _ = writeln!(out, "  trainer stage breakdown:");
    for (label, ns) in [
        ("prep (blocked)", r.prep_ns),
        ("transfer", r.transfer_ns),
        ("compute", r.compute_ns),
        ("other", r.other_ns),
    ] {
        let _ = writeln!(
            out,
            "    {label:<16} {:>12}  {:>5.1}%",
            fmt_ms(ns),
            r.pct(ns)
        );
    }
    // The named decomposition of `other` (always sums to it exactly).
    for (label, ns) in [
        ("  fill", r.fill_ns),
        ("  idle", r.idle_ns),
        ("  shutdown", r.shutdown_ns),
    ] {
        let _ = writeln!(
            out,
            "    {label:<16} {:>12}  {:>5.1}%",
            fmt_ms(ns),
            r.pct(ns)
        );
    }
    let _ = writeln!(out, "  worker prep breakdown:");
    for (label, ns) in [
        ("sample", r.worker_sample_ns),
        ("slice", r.worker_slice_ns),
        ("copy", r.worker_copy_ns),
        ("slot wait", r.worker_slot_wait_ns),
    ] {
        let _ = writeln!(out, "    {label:<16} {:>12}", fmt_ms(ns));
    }
    let _ = writeln!(
        out,
        "  prep/compute overlap: {} ({:.1}% of compute)",
        fmt_ms(r.overlap_ns),
        100.0 * r.overlap_frac()
    );
    if r.comm_ns > 0 {
        let _ = writeln!(out, "  ddp comm: {}", fmt_ms(r.comm_ns));
    }
    let _ = writeln!(out, "  thread occupancy:");
    for occ in &r.occupancy {
        let _ = writeln!(
            out,
            "    [{:>2}] {:<20} busy {:>12}  {:>5.1}%",
            occ.tid,
            occ.name,
            fmt_ms(occ.busy_ns),
            r.pct(occ.busy_ns)
        );
    }
    // The full registry, not a hand-picked subset: a histogram recorded
    // anywhere in the pipeline shows up here without touching this file.
    for &name in crate::names::hists::ALL {
        if let Some(h) = snap.metrics.histogram(name) {
            if h.count > 0 {
                let (p50, p95, p99) = h.percentiles();
                let _ = writeln!(
                    out,
                    "  {name}: n={} p50={} p95={} p99={}",
                    h.count,
                    fmt_ms(p50),
                    fmt_ms(p95),
                    fmt_ms(p99)
                );
            }
        }
    }
    let faults = [
        crate::names::counters::RETRIES,
        crate::names::counters::FAILED_BATCHES,
        crate::names::counters::RESPAWNS,
    ];
    if faults.iter().any(|c| snap.metrics.counter(c) > 0) {
        let _ = writeln!(
            out,
            "  faults: retries={} failed_batches={} respawns={}",
            snap.metrics.counter(faults[0]),
            snap.metrics.counter(faults[1]),
            snap.metrics.counter(faults[2])
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::clock::Clock;
    use crate::names::{hists, spans};
    use crate::span::Trace;

    fn sample_trace() -> Trace {
        let t = Trace::new(Clock::virtual_manual());
        t.record_span(spans::EPOCH, NO_BATCH, 0, 1_000_000);
        t.record_span(spans::STAGE_TRAIN, 0, 0, 600_000);
        t.record_span(spans::STAGE_PREP, 1, 600_000, 900_000);
        t.instant("fault.retry", 1);
        t.counter_track("pipe.q.compute", 2);
        t.counter("pipeline.batches").add(2);
        t.histogram(hists::PREP_BATCH_NS).observe(250_000);
        t
    }

    #[test]
    fn chrome_trace_has_metadata_spans_and_instants() {
        let json = chrome_trace(&sample_trace().snapshot());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        // Counter tracks carry their sampled value, not a batch id.
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"args\":{\"value\":2}"));
        assert!(json.contains("\"args\":{\"batch\":1}"));
        // NO_BATCH events get no args object.
        assert!(json.contains("\"name\":\"epoch\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0.000,\"dur\":1000.000}"));
    }

    #[test]
    fn metrics_json_includes_percentiles() {
        let json = metrics_json(&sample_trace().snapshot());
        assert!(json.contains("\"pipeline.batches\": 2"));
        assert!(json.contains("\"prep.batch_ns\""));
        assert!(json.contains("\"p95\""));
    }

    #[test]
    fn report_percentages_render() {
        let snap = sample_trace().snapshot();
        let r = analyze(&snap);
        let text = render_report(&r, &snap);
        assert!(text.contains("trainer stage breakdown"));
        assert!(text.contains("compute"));
        assert!(text.contains("60.0%"));
        assert!(text.contains("prep.batch_ns: n=1"));
    }

    #[test]
    fn exports_are_deterministic() {
        let a = sample_trace().snapshot();
        let b = sample_trace().snapshot();
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
        assert_eq!(metrics_json(&a), metrics_json(&b));
        assert_eq!(render_report(&analyze(&a), &a), render_report(&analyze(&b), &b));
    }

    #[test]
    fn escaping_handles_quotes_and_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
