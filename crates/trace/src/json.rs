//! A minimal in-repo JSON parser and a structural validator for the Chrome
//! trace-event format.
//!
//! The workspace is dependency-free, so the CI tier that checks exporter
//! output cannot reach for `serde`; this module implements just enough of
//! RFC 8259 to round-trip what [`crate::export`] emits and to assert the
//! structural invariants a trace viewer relies on.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object (sorted keys; duplicate keys keep the last value).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object entry at `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        // lint: allow(panic-reachability, pos <= bytes.len() parser invariant; the parser reaches the serve path only through the over-approximated value() method edge)
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our exports.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (exports are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("eof"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// Structural facts extracted by [`validate_chrome_trace`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChromeTraceSummary {
    /// `"X"` (complete/duration) events.
    pub span_events: usize,
    /// `"i"` (instant) events.
    pub instant_events: usize,
    /// `"C"` (counter-track) events.
    pub counter_events: usize,
    /// `"M"` (metadata) records.
    pub metadata_events: usize,
    /// Distinct `tid`s across non-metadata events.
    pub distinct_tids: usize,
}

/// Validates that `text` is well-formed Chrome trace-event JSON: a top-level
/// `traceEvents` array whose entries all have a string `name`, a known `ph`,
/// integer `pid`/`tid`, and (for `"X"`/`"i"`) a numeric `ts` — with `"X"`
/// additionally carrying a non-negative `dur`.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceSummary, String> {
    let doc = parse(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut summary = ChromeTraceSummary::default();
    let mut tids: Vec<i64> = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let at = |msg: &str| format!("traceEvents[{i}]: {msg}");
        ev.get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing string name"))?;
        let ph = ev
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| at("missing ph"))?;
        let tid = ev
            .get("tid")
            .and_then(Value::as_num)
            .ok_or_else(|| at("missing tid"))?;
        if tid.fract() != 0.0 {
            return Err(at("tid must be an integer"));
        }
        ev.get("pid")
            .and_then(Value::as_num)
            .ok_or_else(|| at("missing pid"))?;
        match ph {
            "M" => summary.metadata_events += 1,
            "X" | "i" => {
                ev.get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| at("missing numeric ts"))?;
                if ph == "X" {
                    let dur = ev
                        .get("dur")
                        .and_then(Value::as_num)
                        .ok_or_else(|| at("X event missing dur"))?;
                    if dur < 0.0 {
                        return Err(at("negative dur"));
                    }
                    summary.span_events += 1;
                } else {
                    summary.instant_events += 1;
                }
                tids.push(tid as i64);
            }
            "C" => {
                ev.get("ts")
                    .and_then(Value::as_num)
                    .ok_or_else(|| at("missing numeric ts"))?;
                ev.get("args")
                    .ok_or_else(|| at("C event missing args"))?;
                summary.counter_events += 1;
                tids.push(tid as i64);
            }
            other => return Err(at(&format!("unknown ph {other:?}"))),
        }
    }
    tids.sort_unstable();
    tids.dedup();
    summary.distinct_tids = tids.len();
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::export::chrome_trace;
    use crate::names::spans;
    use crate::span::{Trace, NO_BATCH};

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(
            parse("\"a\\n\\u0041\"").unwrap(),
            Value::Str("a\nA".to_string())
        );
        let v = parse("{\"a\": [1, 2], \"b\": {\"c\": \"d\"}}").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("d"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn validates_real_exporter_output() {
        let t = Trace::new(Clock::virtual_with_tick(100));
        {
            let _s = t.span_batch(spans::STAGE_TRAIN, 0);
        }
        t.instant("fault.retry", NO_BATCH);
        t.counter_track("pipe.q.compute", 3);
        let json = chrome_trace(&t.snapshot());
        let summary = validate_chrome_trace(&json).unwrap();
        assert_eq!(summary.span_events, 1);
        assert_eq!(summary.instant_events, 1);
        assert_eq!(summary.counter_events, 1);
        assert_eq!(summary.metadata_events, 1);
        assert_eq!(summary.distinct_tids, 1);
    }

    #[test]
    fn rejects_structurally_broken_traces() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0,\"dur\":1}]}"
        )
        .is_err()); // missing name
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":0}]}"
        )
        .is_err()); // X without dur
        assert!(validate_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"?\",\"pid\":0,\"tid\":0}]}"
        )
        .is_err()); // unknown phase
    }
}
