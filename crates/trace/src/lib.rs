//! Structured tracing and metrics for the SALIENT pipeline.
//!
//! The paper's central claims are *observability* claims: Table 1 attributes
//! per-stage blocking time, Figure 4 shows preparation overlapping training
//! compute. This crate makes those measurements first-class instead of
//! hand-threaded `Instant` arithmetic:
//!
//! * [`Clock`] — the workspace's single sanctioned time source: the process
//!   monotonic clock in production, a manually advanced [`VirtualClock`] in
//!   tests, so every report below is reproducible byte-for-byte
//!   (`salient-lint determinism` rejects raw `Instant::now()` outside
//!   sim/bench/CLI code).
//! * [`Trace`] — a cloneable recording handle. Spans (begin/end intervals
//!   tagged with a stage name and batch id) buffer in plain thread-local
//!   vectors and flush in batches; counters/gauges/histograms are
//!   `Arc`'d atomics. A disabled handle records nothing, reads no clock,
//!   and allocates nothing on the span fast path.
//! * [`analysis`] — turns a [`Snapshot`] of span intervals into a
//!   [`PipelineReport`]: trainer stall attribution
//!   (prep-blocked / transfer / compute / other), worker prep breakdown,
//!   slot-wait backpressure, and the prep∕compute overlap that quantifies
//!   pipelining.
//! * [`export`] — a human-readable epoch report, a JSON metrics snapshot,
//!   and Chrome trace-event JSON (open in `chrome://tracing` or Perfetto);
//!   [`json`] holds the in-repo parser/validator used by CI to check the
//!   trace output structurally.
//!
//! # Example
//!
//! ```
//! use salient_trace::{analysis, names::spans, Clock, Trace};
//!
//! // Deterministic: every clock read advances 1 µs.
//! let trace = Trace::new(Clock::virtual_with_tick(1_000));
//! {
//!     let _epoch = trace.span(spans::EPOCH);
//!     let _train = trace.span_batch(spans::STAGE_TRAIN, 0);
//! }
//! let snap = trace.snapshot();
//! let report = analysis::analyze(&snap);
//! assert!(report.window_ns > 0);
//! let pcts: f64 = report.stage_pcts().iter().sum();
//! assert!((pcts - 100.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod blackbox;
mod clock;
pub mod critical_path;
pub mod export;
pub mod json;
pub mod names;
mod span;

pub mod metrics;

pub use analysis::{analyze, PipelineReport, Snapshot, ThreadOccupancy};
pub use blackbox::{Blackbox, BlackboxConfig};
pub use clock::{Clock, VirtualClock};
pub use critical_path::{batch_chains, BatchChain, ChainAttribution, EdgeKind, Replay, WhatIf};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot};
pub use span::{EventKind, SpanEvent, SpanGuard, Trace, NO_BATCH};
