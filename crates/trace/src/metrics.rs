//! Metric instruments: counters, gauges, and fixed-bucket log-scale
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`-wrapped
//! atomics: look one up once (a short registry lock), then update it on the
//! hot path with plain atomic operations — no locks, no allocation.
//! Histograms use log-linear buckets (16 sub-buckets per octave, exact
//! below 64 ns) so p50/p95/p99 estimates stay within 1/16 (6.25%) of the
//! true quantile across the full nanosecond-to-minutes range with a fixed
//! 992-slot table. The finer resolution matters for small-count
//! distributions: with 4 sub-buckets per octave, a cluster of ~2 µs batch
//! times all landed in one 256 ns-wide bucket and p50/p95/p99 collapsed to
//! the same floor.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets (covers the full `u64` range): 64 exact
/// buckets below 64, then 16 sub-buckets per octave for msb 6..=63.
pub const HIST_BUCKETS: usize = 992;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (all updates are discarded at
    /// snapshot time; used by disabled tracing handles).
    pub fn detached() -> Counter {
        Counter::default()
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        // Relaxed: pure monotone statistic, read only at snapshot time.
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // Relaxed: snapshot read of a statistic.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: u64) {
        // Relaxed: last-writer-wins statistic, read only at snapshot time.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // Relaxed: snapshot read of a statistic.
        self.0.load(Ordering::Relaxed)
    }
}

/// Maps a value to its log-linear bucket index.
///
/// Values below 64 get exact buckets; above that, each power of two is
/// split into 16 sub-buckets keyed by the four bits after the leading one,
/// bounding the floor's relative error by 1/16.
fn bucket_index(v: u64) -> usize {
    if v < 64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as u64; // >= 6
    let sub = (v >> (msb - 4)) & 0b1111;
    (64 + (msb - 6) * 16 + sub) as usize
}

/// The smallest value that maps to bucket `i` (inverse of [`bucket_index`]).
fn bucket_floor(i: usize) -> u64 {
    if i < 64 {
        return i as u64;
    }
    let msb = 6 + (i as u64 - 64) / 16;
    let sub = (i as u64 - 64) % 16;
    (1u64 << msb) | (sub << (msb - 4))
}

/// A fixed-bucket log-scale histogram (lock-free updates).
#[derive(Debug)]
pub struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A shareable histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn detached() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = bucket_index(v).min(HIST_BUCKETS - 1);
        // Relaxed everywhere: independent statistics read only at snapshot
        // time; no ordering between them is required for the estimates.
        // lint: allow(panic-reachability, i is clamped to HIST_BUCKETS - 1 one line up and buckets holds exactly HIST_BUCKETS entries)
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed); // relaxed: see above
        self.0.count.fetch_add(1, Ordering::Relaxed); // relaxed: see above
        self.0.sum.fetch_add(v, Ordering::Relaxed); // relaxed: see above
    }

    /// An immutable summary of the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // Relaxed loads: concurrent writers may race the snapshot; each
        // statistic is independently consistent, which is all reports need.
        let buckets: Vec<u64> = self
            .0
            .buckets
            .iter()
            // relaxed: each bucket is an independent estimate (see above)
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            // relaxed: sum may lag the buckets; reports tolerate the skew
            sum: self.0.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Frozen histogram contents with quantile estimation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Per-bucket observation counts.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) as the floor of the bucket
    /// containing that rank; returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_floor(i);
            }
        }
        bucket_floor(HIST_BUCKETS - 1)
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Convenience: (p50, p95, p99).
    pub fn percentiles(&self) -> (u64, u64, u64) {
        (self.quantile(0.50), self.quantile(0.95), self.quantile(0.99))
    }
}

/// The instrument registry behind a tracing handle.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    gauges: Mutex<BTreeMap<&'static str, Gauge>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
}

fn lock_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Instrument maps hold plain handles; a poisoned map is still usable.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Metrics {
    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &'static str) -> Counter {
        lock_tolerant(&self.counters).entry(name).or_default().clone()
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        lock_tolerant(&self.gauges).entry(name).or_default().clone()
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        lock_tolerant(&self.histograms).entry(name).or_default().clone()
    }

    /// Snapshots every instrument (sorted by name).
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: lock_tolerant(&self.counters)
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: lock_tolerant(&self.gauges)
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: lock_tolerant(&self.histograms)
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

/// Frozen values of every instrument in a registry.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram contents, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// The snapshot of histogram `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_floor_are_consistent() {
        for v in [0u64, 1, 5, 7, 8, 9, 15, 16, 63, 64, 65, 100, 1_000, 123_456, u64::MAX / 2] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v, "floor({i}) <= {v}");
            if i + 1 < HIST_BUCKETS {
                assert!(bucket_floor(i + 1) > v, "floor({}) > {v}", i + 1);
            }
        }
        // Index is monotone in the value.
        let mut prev = 0;
        for v in 0..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn quantiles_are_order_of_magnitude_accurate() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.observe(v * 1_000); // 1 µs .. 1 ms, uniform
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        let (p50, p95, p99) = s.percentiles();
        assert!((400_000..=600_000).contains(&p50), "p50 {p50}");
        assert!((800_000..=1_000_000).contains(&p95), "p95 {p95}");
        assert!(p99 >= p95 && p50 <= p95);
        assert!((s.mean() - 500_500.0).abs() < 1_000.0);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let m = Metrics::default();
        let a = m.counter("x");
        let b = m.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(m.counter("x").get(), 5);
        m.gauge("g").set(7);
        m.histogram("h").observe(42);
        let snap = m.snapshot();
        assert_eq!(snap.counter("x"), 5);
        assert_eq!(snap.gauges, vec![("g".to_string(), 7)]);
        assert_eq!(snap.histogram("h").unwrap().count, 1);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn relative_error_is_bounded_by_one_sixteenth() {
        // Exact below 64; above, the bucket floor underestimates by at most
        // v/16 (the 4 sub-bucket bits preserve the top 5 significant bits).
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for x in [v, v + 1, v * 3 / 2, v * 2 - 1] {
                let f = bucket_floor(bucket_index(x));
                assert!(f <= x, "floor {f} > value {x}");
                if x < 64 {
                    assert_eq!(f, x, "exact range must be exact");
                } else {
                    let err = (x - f) as f64;
                    assert!(err <= x as f64 / 16.0, "err {err} > {x}/16");
                }
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn small_count_distributions_keep_distinct_percentiles() {
        // A tight cluster of ~2 µs values: with the old 4-sub-bucket table,
        // 1800/1900/2000 all landed in the single 1792..2047 bucket and
        // p50/p95/p99 collapsed to the same floor (the BENCH prep_batch
        // defect). The 16-sub-bucket table keeps them distinct.
        let h = Histogram::default();
        for _ in 0..90 {
            h.observe(1_800);
        }
        for _ in 0..8 {
            h.observe(1_900);
        }
        for _ in 0..2 {
            h.observe(2_000);
        }
        let (p50, p95, p99) = h.snapshot().percentiles();
        assert_eq!(p50, 1_792, "p50 {p50}");
        assert_eq!(p95, 1_856, "p95 {p95}");
        assert_eq!(p99, 1_984, "p99 {p99}");
        assert!(p50 < p95 && p95 < p99, "percentiles must be distinct");
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
    }
}
