//! The registry of well-known span, counter, histogram, and event names
//! used by the instrumented pipeline (the observability analogue of
//! `salient_fault::sites`).
//!
//! The stall-attribution analysis ([`crate::analysis`]) keys on the span
//! names below, so instrumentation across crates must use these constants
//! rather than ad-hoc strings.

/// Interval (span) names.
pub mod spans {
    /// One training epoch, recorded on the consumer ("trainer") thread.
    pub const EPOCH: &str = "epoch";
    /// Trainer-side batch-preparation stage: for the baseline executor the
    /// actual sample+slice work; for the SALIENT executor only the time the
    /// trainer *blocked* waiting for a prepared batch.
    pub const STAGE_PREP: &str = "stage.prep";
    /// Trainer-side host→device staging (f16→f32 upcast standing in for the
    /// PCIe copy).
    pub const STAGE_TRANSFER: &str = "stage.transfer";
    /// Trainer-side model compute (forward + backward + step).
    pub const STAGE_TRAIN: &str = "stage.train";
    /// Worker-side neighborhood sampling + MFG construction.
    pub const PREP_SAMPLE: &str = "prep.sample";
    /// Worker-side feature/label slicing.
    pub const PREP_SLICE: &str = "prep.slice";
    /// Worker-side extra copy (multiprocessing-emulation mode only).
    pub const PREP_COPY: &str = "prep.copy";
    /// Worker blocked waiting for a free pinned staging slot (backpressure).
    pub const SLOT_WAIT: &str = "prep.slot_wait";
    /// One DDP ring step (send + receive).
    pub const COMM_STEP: &str = "ddp.step";
    /// One rank's whole epoch in a DDP run.
    pub const RANK_EPOCH: &str = "ddp.epoch";
    /// Serving micro-batch neighborhood sampling.
    pub const SERVE_SAMPLE: &str = "serve.sample";
    /// Serving micro-batch feature slicing into a pinned slot.
    pub const SERVE_SLICE: &str = "serve.slice";
    /// Serving micro-batch model compute (widen + forward).
    pub const SERVE_GEMM: &str = "serve.gemm";
    /// A pipeline stage blocked on its input queue (threaded stage-graph
    /// executor; the sink stage's wait keeps its Table-1 name,
    /// [`STAGE_PREP`]).
    pub const PIPE_WAIT: &str = "pipe.wait";
    /// DDP rank-side batch preparation (sample + gather) stage work.
    pub const DDP_PREP: &str = "ddp.prep";
    /// DDP rank-side compute (forward + backward + all-reduce + step)
    /// stage work.
    pub const DDP_TRAIN: &str = "ddp.train";
    /// Warm-up iterations excluded from steady-state measurement; also the
    /// stage-graph executor's first source wait per run (pipeline fill),
    /// kept out of the steady-state wait histogram.
    pub const WARMUP: &str = "warmup";
    /// Bench harness: one PyG-style (per-batch allocation) sampling pass.
    pub const BENCH_SAMPLE_PYG: &str = "bench.sample_pyg";
    /// Bench harness: one SALIENT fast-sampler pass.
    pub const BENCH_SAMPLE_FAST: &str = "bench.sample_fast";
    /// A stage-graph producer blocked pushing into a full bounded queue
    /// (backpressure edge in the per-batch causal chain).
    pub const PIPE_SEND: &str = "pipe.send";
    /// One DDP ring-link send (causal edge: this rank → next rank).
    pub const DDP_RING_SEND: &str = "ddp.ring_send";
    /// One DDP ring-link receive (causal edge: previous rank → this rank).
    pub const DDP_RING_RECV: &str = "ddp.ring_recv";

    /// Every span name — the exporter's known-name list.
    pub const ALL: &[&str] = &[
        EPOCH,
        STAGE_PREP,
        STAGE_TRANSFER,
        STAGE_TRAIN,
        PREP_SAMPLE,
        PREP_SLICE,
        PREP_COPY,
        SLOT_WAIT,
        COMM_STEP,
        RANK_EPOCH,
        SERVE_SAMPLE,
        SERVE_SLICE,
        SERVE_GEMM,
        PIPE_WAIT,
        DDP_PREP,
        DDP_TRAIN,
        WARMUP,
        BENCH_SAMPLE_PYG,
        BENCH_SAMPLE_FAST,
        PIPE_SEND,
        DDP_RING_SEND,
        DDP_RING_RECV,
    ];
}

/// Counter names.
pub mod counters {
    /// Batches consumed by the trainer.
    pub const BATCHES: &str = "pipeline.batches";
    /// Sampled nodes staged by prep workers.
    pub const PREP_NODES: &str = "prep.nodes";
    /// MFG edges staged by prep workers.
    pub const PREP_EDGES: &str = "prep.edges";
    /// Staged payload bytes (what a CPU→GPU DMA would move).
    pub const PREP_BYTES: &str = "prep.bytes";
    /// Packed bytes the trainer pulled through the transfer stage (staged
    /// features at their storage dtype + labels). With f16 feature storage
    /// this is ~half the f32 figure — the paper's optimization (iii) made
    /// visible in the epoch report.
    pub const TRANSFER_BYTES: &str = "transfer.bytes";
    /// Per-item panics caught inside prep workers.
    pub const ITEM_PANICS: &str = "fault.item_panics";
    /// Prep work items requeued for another attempt.
    pub const RETRIES: &str = "fault.retries";
    /// Batches that exhausted their retry budget.
    pub const FAILED_BATCHES: &str = "fault.failed_batches";
    /// Whole prep-worker deaths observed by the supervisor.
    pub const WORKER_PANICS: &str = "fault.worker_panics";
    /// Replacement prep workers spawned.
    pub const RESPAWNS: &str = "fault.respawns";
    /// Epochs the supervisor finished with inline preparation.
    pub const DEGRADED: &str = "fault.degraded_inline";
    /// Payload bytes sent over DDP ring links.
    pub const DDP_BYTES: &str = "ddp.bytes_sent";
    /// DDP ring steps completed.
    pub const DDP_STEPS: &str = "ddp.steps";
    /// Serving requests accepted past admission control.
    pub const SERVE_ADMITTED: &str = "serve.admitted";
    /// Serving requests answered with a prediction.
    pub const SERVE_COMPLETED: &str = "serve.completed";
    /// Serving requests shed at admission with `Rejected::Overload`.
    pub const SERVE_SHED_OVERLOAD: &str = "serve.shed_overload";
    /// Serving requests shed with `Rejected::DeadlineInfeasible`.
    pub const SERVE_SHED_INFEASIBLE: &str = "serve.shed_deadline_infeasible";
    /// Overload sheds attributable to an open circuit breaker.
    pub const SERVE_SHED_BREAKER: &str = "serve.shed_breaker";
    /// Admitted requests whose deadline expired mid-pipeline (dropped early).
    pub const SERVE_EXPIRED: &str = "serve.deadline_expired";
    /// Per-request panics caught at the serving isolation boundary.
    pub const SERVE_REQUEST_PANICS: &str = "serve.request_panics";
    /// Degradation-ladder steps down (fanout reduced).
    pub const SERVE_DEGRADES: &str = "serve.degrades";
    /// Degradation-ladder steps up (fanout restored).
    pub const SERVE_RESTORES: &str = "serve.restores";
    /// Circuit-breaker Closed→Open transitions.
    pub const SERVE_BREAKER_OPENS: &str = "serve.breaker_opens";
    /// Serving worker threads respawned by the supervisor.
    pub const SERVE_RESPAWNS: &str = "serve.respawns";
    /// Items dropped by a caught panic inside a stage-graph executor stage.
    pub const PIPE_STAGE_PANICS: &str = "pipe.stage_panics";
    /// Flight-recorder dumps written by the blackbox exporter.
    pub const BLACKBOX_DUMPS: &str = "blackbox.dumps";

    /// Every counter name — the exporter's known-name list.
    pub const ALL: &[&str] = &[
        BATCHES,
        PREP_NODES,
        PREP_EDGES,
        PREP_BYTES,
        TRANSFER_BYTES,
        ITEM_PANICS,
        RETRIES,
        FAILED_BATCHES,
        WORKER_PANICS,
        RESPAWNS,
        DEGRADED,
        DDP_BYTES,
        DDP_STEPS,
        SERVE_ADMITTED,
        SERVE_COMPLETED,
        SERVE_SHED_OVERLOAD,
        SERVE_SHED_INFEASIBLE,
        SERVE_SHED_BREAKER,
        SERVE_EXPIRED,
        SERVE_REQUEST_PANICS,
        SERVE_DEGRADES,
        SERVE_RESTORES,
        SERVE_BREAKER_OPENS,
        SERVE_RESPAWNS,
        PIPE_STAGE_PANICS,
        BLACKBOX_DUMPS,
    ];
}

/// Gauge names.
pub mod gauges {
    /// Serving requests currently queued past admission.
    pub const QUEUE_DEPTH: &str = "serve.queue_depth";
    /// Current serving fanout level on the degradation ladder.
    pub const FANOUT_LEVEL: &str = "serve.fanout_level";
    /// Circuit-breaker state (0 closed, 1 half-open, 2 open).
    pub const BREAKER_STATE: &str = "serve.breaker_state";
    /// Depth of the stage-graph executor's transfer→compute queue (the
    /// double-buffer bound; backpressure shows as this gauge pinned at
    /// capacity).
    pub const PIPE_QUEUE_COMPUTE: &str = "pipe.q.compute";

    /// Every gauge name — the exporter's known-name list.
    pub const ALL: &[&str] = &[QUEUE_DEPTH, FANOUT_LEVEL, BREAKER_STATE, PIPE_QUEUE_COMPUTE];
}

/// Histogram names.
pub mod hists {
    /// End-to-end preparation nanoseconds per batch (sample + slice + copy).
    pub const PREP_BATCH_NS: &str = "prep.batch_ns";
    /// Model-compute nanoseconds per batch.
    pub const TRAIN_BATCH_NS: &str = "train.batch_ns";
    /// Trainer blocking-wait nanoseconds per batch.
    pub const PREP_WAIT_NS: &str = "prep.wait_ns";
    /// End-to-end serving latency (submit → response) per completed request.
    pub const SERVE_LATENCY_NS: &str = "serve.latency_ns";
    /// Serving micro-batch pipeline nanoseconds (sample + slice + gemm).
    pub const SERVE_BATCH_NS: &str = "serve.batch_ns";
    /// Pipeline-fill nanoseconds: the stage-graph executor's first source
    /// wait per run, reported separately so it cannot distort the
    /// steady-state `prep.wait_ns` percentiles.
    pub const PIPE_FILL_NS: &str = "pipe.fill_ns";

    /// Every histogram name — the exporter's known-name list.
    pub const ALL: &[&str] = &[
        PREP_BATCH_NS,
        TRAIN_BATCH_NS,
        PREP_WAIT_NS,
        SERVE_LATENCY_NS,
        SERVE_BATCH_NS,
        PIPE_FILL_NS,
    ];
}

/// Point-event names.
pub mod events {
    /// A prep work item was requeued after a caught panic.
    pub const RETRY: &str = "fault.retry";
    /// The supervisor spawned a replacement worker.
    pub const RESPAWN: &str = "fault.respawn";
    /// A batch exhausted its retry budget (terminal failure marker).
    pub const FAILED_BATCH: &str = "fault.failed_batch";
    /// The worker set collapsed; the epoch finished inline.
    pub const DEGRADED_INLINE: &str = "fault.degraded";
    /// A whole prep-worker thread died.
    pub const WORKER_PANIC: &str = "fault.worker_panic";
    /// The serving degradation ladder stepped down one fanout level.
    pub const SERVE_DEGRADE: &str = "serve.degrade";
    /// The serving degradation ladder stepped back up one level.
    pub const SERVE_RESTORE: &str = "serve.restore";
    /// Serving circuit breaker tripped Closed→Open.
    pub const SERVE_BREAKER_OPEN: &str = "serve.breaker.open";
    /// Serving circuit breaker cooled down Open→HalfOpen.
    pub const SERVE_BREAKER_HALF_OPEN: &str = "serve.breaker.half_open";
    /// Serving circuit breaker probe succeeded: HalfOpen→Closed.
    pub const SERVE_BREAKER_CLOSE: &str = "serve.breaker.close";
    /// A stage-graph executor stage caught an item panic (item dropped).
    pub const PIPE_STAGE_PANIC: &str = "pipe.stage_panic";
    /// A stage-graph run exceeded its panic budget (or a stage returned a
    /// fatal outcome) and stopped pulling new work.
    pub const PIPE_POISONED: &str = "pipe.poisoned";
    /// The flight recorder wrote a blackbox dump (payload: triggering batch).
    pub const BLACKBOX_DUMP: &str = "blackbox.dump";

    /// Every event name — the exporter's known-name list.
    pub const ALL: &[&str] = &[
        RETRY,
        RESPAWN,
        FAILED_BATCH,
        DEGRADED_INLINE,
        WORKER_PANIC,
        SERVE_DEGRADE,
        SERVE_RESTORE,
        SERVE_BREAKER_OPEN,
        SERVE_BREAKER_HALF_OPEN,
        SERVE_BREAKER_CLOSE,
        PIPE_STAGE_PANIC,
        PIPE_POISONED,
        BLACKBOX_DUMP,
    ];
}
