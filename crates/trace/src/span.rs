//! The tracing handle: per-thread buffered span recording.
//!
//! A [`Trace`] is either *enabled* (an `Arc`'d registry of span events,
//! thread names, and metric instruments, all stamped by one shared
//! [`Clock`]) or *disabled* (a null handle: starting a span reads no clock,
//! allocates nothing, and records nothing — the hot path is behaviorally
//! identical to uninstrumented code).
//!
//! Recording is sharded per thread: finished spans are pushed onto a plain
//! thread-local buffer (no locks, no atomics) and flushed into the central
//! registry in batches — when the buffer fills, when the thread exits
//! (thread-local destructor), or when [`Trace::flush_current_thread`] is
//! called. Threads that outlive the measurement (the trainer thread, a CLI
//! main) must flush before a [`Trace::snapshot`] is taken; worker threads
//! flush automatically on exit.

use crate::analysis::Snapshot;
use crate::blackbox::{Blackbox, BlackboxConfig, BlackboxInner, Shard};
use crate::clock::Clock;
use crate::metrics::{Counter, Gauge, Histogram, Metrics};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel batch id for events not tied to any batch.
pub const NO_BATCH: u64 = u64::MAX;

/// Buffered events per thread before an automatic flush.
const FLUSH_EVERY: usize = 128;

/// What an event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// An interval with a start and an end.
    Span,
    /// A point event (retry, respawn, failure marker).
    Instant,
    /// A sampled counter-track value (queue depth over time); the sampled
    /// value rides in the `batch` field and `start_ns == end_ns`.
    Counter,
}

/// One recorded event.
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Event name (one of [`crate::names::spans`] / [`crate::names::events`]
    /// for pipeline code; free-form `&'static str` otherwise).
    pub name: &'static str,
    /// Interval or point event.
    pub kind: EventKind,
    /// Small dense id of the recording thread (index into the snapshot's
    /// thread-name table).
    pub tid: u32,
    /// Associated batch id, or [`NO_BATCH`]; for [`EventKind::Counter`]
    /// events this field carries the sampled value instead.
    pub batch: u64,
    /// Start timestamp (clock nanoseconds).
    pub start_ns: u64,
    /// End timestamp; equals `start_ns` for point events.
    pub end_ns: u64,
}

impl SpanEvent {
    /// The event's duration in nanoseconds (0 for point events).
    pub fn dur_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

#[derive(Debug)]
pub(crate) struct TraceInner {
    id: u64,
    clock: Clock,
    events: Mutex<Vec<SpanEvent>>,
    /// Thread-name table; a thread's tid is its index here.
    threads: Mutex<Vec<String>>,
    metrics: Metrics,
    /// Flight recorder, when attached: per-thread bounded rings of the most
    /// recent events, dumped on faults (see [`crate::blackbox`]).
    blackbox: Option<Arc<BlackboxInner>>,
}

fn lock_tolerant<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // Event and thread tables hold plain data; poisoning cannot corrupt
    // them, so a panicked recorder does not take observability down with it.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A per-thread event buffer bound to one trace registry; flushes on drop.
struct ThreadBuf {
    inner: Arc<TraceInner>,
    tid: u32,
    buf: Vec<SpanEvent>,
    /// This thread's flight-recorder ring, when a blackbox is attached.
    shard: Option<Arc<Shard>>,
}

/// Builds the calling thread's buffer for `inner`, registering the thread
/// and (when a blackbox is attached) its flight-recorder ring shard.
fn new_thread_buf(inner: &Arc<TraceInner>) -> ThreadBuf {
    let tid = register_thread(inner);
    ThreadBuf {
        inner: Arc::clone(inner),
        tid,
        buf: Vec::with_capacity(FLUSH_EVERY),
        shard: inner.blackbox.as_ref().map(|bb| bb.register_shard(tid)),
    }
}

impl ThreadBuf {
    fn flush(&mut self) {
        if !self.buf.is_empty() {
            lock_tolerant(&self.inner.events).append(&mut self.buf);
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    /// One buffer per (thread, live trace registry) pair. The vector is
    /// tiny: a thread rarely records into more than one or two registries.
    static BUFFERS: RefCell<Vec<ThreadBuf>> = const { RefCell::new(Vec::new()) };
}

/// Registers the current thread with `inner` (idempotent) and returns its
/// dense thread id.
fn register_thread(inner: &Arc<TraceInner>) -> u32 {
    let mut threads = lock_tolerant(&inner.threads);
    let tid = threads.len() as u32;
    let name = std::thread::current()
        .name()
        .map(str::to_string)
        .unwrap_or_else(|| format!("thread-{tid}"));
    threads.push(name);
    tid
}

/// Appends `ev` to the current thread's buffer for `inner`, creating and
/// registering the buffer on first use.
fn record(inner: &Arc<TraceInner>, mut make: impl FnMut(u32) -> SpanEvent) {
    let pushed = BUFFERS.try_with(|cell| {
        let mut bufs = cell.borrow_mut();
        let entry = match bufs.iter_mut().position(|b| b.inner.id == inner.id) {
            // lint: allow(panic-reachability, i comes from position() on the same bufs vec one line up)
            Some(i) => &mut bufs[i],
            None => {
                bufs.push(new_thread_buf(inner));
                let last = bufs.len() - 1;
                &mut bufs[last]
            }
        };
        let ev = make(entry.tid);
        entry.buf.push(ev);
        if entry.buf.len() >= FLUSH_EVERY {
            entry.flush();
        }
        // Mirror into the flight-recorder ring after the buffer push so the
        // two never hold their locks at once (acyclic lock order).
        if let Some(shard) = &entry.shard {
            shard.write(ev);
        }
    });
    if pushed.is_err() {
        // Thread-local storage already destroyed (event recorded during
        // thread teardown): fall back to the shared table directly.
        let tid = register_thread(inner);
        lock_tolerant(&inner.events).push(make(tid));
    }
}

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// A tracing + metrics handle (see the module docs).
///
/// # Examples
///
/// ```
/// use salient_trace::{Clock, Trace};
///
/// let trace = Trace::new(Clock::virtual_with_tick(1_000));
/// {
///     let _span = trace.span("work");
/// } // recorded on drop
/// trace.counter("items").inc();
/// let snap = trace.snapshot();
/// assert_eq!(snap.events.len(), 1);
/// assert_eq!(snap.events[0].dur_ns(), 1_000);
/// assert_eq!(snap.metrics.counter("items"), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    inner: Option<Arc<TraceInner>>,
}

impl Trace {
    /// An enabled handle recording against `clock`.
    pub fn new(clock: Clock) -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                // Relaxed: the id only needs uniqueness, not ordering.
                id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                events: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                metrics: Metrics::default(),
                blackbox: None,
            })),
        }
    }

    /// An enabled handle with an attached flight recorder: every recorded
    /// event is also mirrored into a bounded per-thread ring that the
    /// [`Blackbox`] can dump on faults (see [`crate::blackbox`]).
    pub fn with_blackbox(clock: Clock, cfg: BlackboxConfig) -> Trace {
        Trace {
            inner: Some(Arc::new(TraceInner {
                // Relaxed: the id only needs uniqueness, not ordering.
                id: NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed),
                clock,
                events: Mutex::new(Vec::new()),
                threads: Mutex::new(Vec::new()),
                metrics: Metrics::default(),
                blackbox: Some(Arc::new(BlackboxInner::new(cfg))),
            })),
        }
    }

    /// The attached flight recorder, if this handle has one.
    pub fn blackbox(&self) -> Option<Blackbox> {
        let inner = self.inner.as_ref()?;
        inner.blackbox.as_ref().map(|bb| Blackbox::from_inner(Arc::clone(bb)))
    }

    /// The null handle: every operation is a no-op and the span fast path
    /// performs no clock read and no allocation.
    pub fn disabled() -> Trace {
        Trace { inner: None }
    }

    /// Whether this handle records anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The clock this handle stamps events with (monotonic for a disabled
    /// handle, so callers can use it unconditionally for elapsed-time
    /// measurements).
    pub fn clock(&self) -> Clock {
        match &self.inner {
            Some(inner) => inner.clock.clone(),
            None => Clock::Monotonic,
        }
    }

    /// Reads the handle's clock.
    pub fn now_ns(&self) -> u64 {
        self.clock().now_ns()
    }

    /// Starts a span; it is recorded when the guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        self.span_batch(name, NO_BATCH)
    }

    /// Starts a span tagged with a batch id. The disabled path must stay
    /// allocation-free (pinned dynamically by `tests/trace_overhead.rs`,
    /// statically by the region below).
    // lint: region(no_alloc)
    pub fn span_batch(&self, name: &'static str, batch: u64) -> SpanGuard<'_> {
        SpanGuard {
            active: self.inner.as_ref().map(|inner| ActiveSpan {
                inner,
                name,
                batch,
                start_ns: inner.clock.now_ns(),
            }),
        }
    }

    /// Records an interval from already-known timestamps (for callers that
    /// measured with [`Trace::now_ns`] themselves).
    pub fn record_span(&self, name: &'static str, batch: u64, start_ns: u64, end_ns: u64) {
        if let Some(inner) = &self.inner {
            record(inner, |tid| SpanEvent {
                name,
                kind: EventKind::Span,
                tid,
                batch,
                start_ns,
                end_ns,
            });
        }
    }

    /// Records a point event.
    pub fn instant(&self, name: &'static str, batch: u64) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now_ns();
            record(inner, |tid| SpanEvent {
                name,
                kind: EventKind::Instant,
                tid,
                batch,
                start_ns: now,
                end_ns: now,
            });
        }
    }

    /// The counter named `name` (a detached dummy when disabled, so handles
    /// can be acquired unconditionally outside hot loops).
    pub fn counter(&self, name: &'static str) -> Counter {
        match &self.inner {
            Some(inner) => inner.metrics.counter(name),
            None => Counter::detached(),
        }
    }

    /// The gauge named `name`.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match &self.inner {
            Some(inner) => inner.metrics.gauge(name),
            None => Gauge::detached(),
        }
    }

    /// The histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match &self.inner {
            Some(inner) => inner.metrics.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Convenience counter add (cold paths; hot paths should hold a
    /// [`Counter`] handle instead).
    pub fn add(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.counter(name).add(v);
        }
    }

    /// Convenience histogram observation (cold paths).
    pub fn observe(&self, name: &'static str, v: u64) {
        if let Some(inner) = &self.inner {
            inner.metrics.histogram(name).observe(v);
        }
    }

    /// Records a timestamped counter-track sample (exported as a Chrome
    /// `"C"` counter event, e.g. queue depth over time). The sampled value
    /// rides in the event's `batch` field.
    pub fn counter_track(&self, name: &'static str, value: u64) {
        if let Some(inner) = &self.inner {
            let now = inner.clock.now_ns();
            record(inner, |tid| SpanEvent {
                name,
                kind: EventKind::Counter,
                tid,
                batch: value,
                start_ns: now,
                end_ns: now,
            });
        }
    }

    /// Registers the calling thread (idempotent) and returns its dense id,
    /// or `None` for a disabled handle.
    pub fn current_tid(&self) -> Option<u32> {
        let inner = self.inner.as_ref()?;
        let mut tid = None;
        let _ = BUFFERS.try_with(|cell| {
            let mut bufs = cell.borrow_mut();
            if let Some(b) = bufs.iter().find(|b| b.inner.id == inner.id) {
                tid = Some(b.tid);
            } else {
                let b = new_thread_buf(inner);
                tid = Some(b.tid);
                bufs.push(b);
            }
        });
        tid
    }

    /// Flushes the calling thread's buffered events into the registry.
    /// Long-lived threads (the consumer loop, CLI mains) call this before a
    /// snapshot; worker threads flush automatically when they exit.
    pub fn flush_current_thread(&self) {
        if let Some(inner) = &self.inner {
            let _ = BUFFERS.try_with(|cell| {
                let mut bufs = cell.borrow_mut();
                if let Some(b) = bufs.iter_mut().find(|b| b.inner.id == inner.id) {
                    b.flush();
                }
            });
        }
    }

    /// Flushes the calling thread and freezes everything recorded so far.
    ///
    /// Events are sorted by `(start_ns, tid, name)` so identical executions
    /// under a [`crate::VirtualClock`] produce byte-identical exports.
    pub fn snapshot(&self) -> Snapshot {
        self.flush_current_thread();
        match &self.inner {
            None => Snapshot::default(),
            Some(inner) => {
                let mut events = lock_tolerant(&inner.events).clone();
                events.sort_by(|a, b| {
                    (a.start_ns, a.tid, a.name).cmp(&(b.start_ns, b.tid, b.name))
                });
                Snapshot {
                    events,
                    threads: lock_tolerant(&inner.threads).clone(),
                    metrics: inner.metrics.snapshot(),
                }
            }
        }
    }
}

struct ActiveSpan<'a> {
    inner: &'a Arc<TraceInner>,
    name: &'static str,
    batch: u64,
    start_ns: u64,
}

/// An in-flight span; recording happens when it drops.
#[must_use = "a span guard records on drop; binding it to `_` ends it immediately"]
pub struct SpanGuard<'a> {
    active: Option<ActiveSpan<'a>>,
}

impl Drop for SpanGuard<'_> {
    // lint: region(no_alloc)
    fn drop(&mut self) {
        if let Some(a) = self.active.take() {
            let end_ns = a.inner.clock.now_ns();
            record(a.inner, |tid| SpanEvent {
                name: a.name,
                kind: EventKind::Span,
                tid,
                batch: a.batch,
                start_ns: a.start_ns,
                end_ns,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Trace::disabled();
        {
            let _s = t.span_batch("x", 3);
        }
        t.instant("y", NO_BATCH);
        t.add("c", 5);
        t.observe("h", 9);
        let snap = t.snapshot();
        assert!(snap.events.is_empty());
        assert!(snap.metrics.counters.is_empty());
        assert!(!t.is_enabled());
        assert!(t.current_tid().is_none());
    }

    #[test]
    fn spans_nest_and_tag_batches() {
        let t = Trace::new(Clock::virtual_with_tick(10));
        {
            let _outer = t.span("outer");
            let _inner = t.span_batch("inner", 7);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 2);
        // Sorted by start: outer started first.
        assert_eq!(snap.events[0].name, "outer");
        assert_eq!(snap.events[1].name, "inner");
        assert_eq!(snap.events[1].batch, 7);
        assert!(snap.events[0].end_ns >= snap.events[1].end_ns);
    }

    #[test]
    fn worker_threads_flush_on_exit() {
        let t = Trace::new(Clock::monotonic());
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let t = t.clone();
                std::thread::Builder::new()
                    .name(format!("w{i}"))
                    .spawn(move || {
                        let _s = t.span("worker");
                    })
                    .unwrap()
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let snap = t.snapshot();
        assert_eq!(snap.events.len(), 3);
        assert_eq!(snap.distinct_tids(), 3);
        let mut names = snap.threads.clone();
        names.sort();
        assert_eq!(names, vec!["w0", "w1", "w2"]);
    }

    #[test]
    fn buffered_events_flush_at_threshold() {
        let t = Trace::new(Clock::virtual_with_tick(1));
        for _ in 0..FLUSH_EVERY {
            let _s = t.span("e");
        }
        // Without an explicit flush the threshold must have pushed them out.
        let inner = t.inner.as_ref().unwrap();
        assert_eq!(lock_tolerant(&inner.events).len(), FLUSH_EVERY);
    }

    #[test]
    fn record_span_uses_caller_timestamps() {
        let t = Trace::new(Clock::virtual_manual());
        t.record_span("x", 1, 100, 250);
        let snap = t.snapshot();
        assert_eq!(snap.events[0].dur_ns(), 150);
    }

    #[test]
    fn snapshot_is_deterministic_under_virtual_clock() {
        let run = || {
            let t = Trace::new(Clock::virtual_with_tick(5));
            for b in 0..10u64 {
                let _s = t.span_batch("batch", b);
                t.instant("mark", b);
            }
            let s = t.snapshot();
            s.events
                .iter()
                .map(|e| (e.name, e.batch, e.start_ns, e.end_ns))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
