//! Distributed data-parallel training with real rank threads (the in-process
//! analogue of the paper's 16-GPU PyTorch-DDP runs), plus the simulated
//! paper-scale scaling curve for comparison.
//!
//! Run: `cargo run --release --example distributed_scaling`

use salient_repro::core::{train_ddp, RunConfig};
use salient_repro::graph::{DatasetConfig, DatasetStats};
use salient_repro::sim::{scaling_sweep, CostModel, EpochConfig, OptLevel};
use std::sync::Arc;

fn main() {
    // Real in-process DDP on the synthetic dataset.
    let mut cfg = DatasetConfig::arxiv_sim(0.2);
    cfg.split_fracs = (0.5, 0.2, 0.3);
    let dataset = Arc::new(cfg.build());
    let run = RunConfig {
        num_layers: 2,
        hidden: 32,
        train_fanouts: vec![10, 5],
        infer_fanouts: vec![20, 20],
        batch_size: 128,
        learning_rate: 5e-3,
        epochs: 3,
        ..RunConfig::default()
    };
    println!("real in-process DDP (arxiv-sim, {} train nodes):", dataset.splits.train.len());
    for ranks in [1usize, 2, 4] {
        let result = train_ddp(&dataset, &run, ranks).expect("ddp run failed");
        println!(
            "  {ranks} rank(s): losses {:?} wall {:.2}s (effective batch {})",
            result
                .epoch_losses
                .iter()
                .map(|l| format!("{l:.3}"))
                .collect::<Vec<_>>(),
            result.wall_s,
            run.batch_size * ranks,
        );
    }
    println!("(one physical core: ranks time-share, so wall time does not drop — the");
    println!(" gradient math and replica synchronization are what is being demonstrated.)\n");

    // Simulated paper-scale scaling (Figure 5).
    println!("simulated paper-scale scaling, ogbn-papers100M (Figure 5):");
    let model = CostModel::paper_hardware();
    let base = EpochConfig::paper_default(DatasetStats::papers(), OptLevel::Pipelined);
    let sweep = scaling_sweep(&base, &[1, 2, 4, 8, 16], &model);
    let t1 = sweep[0].1;
    for (ranks, t) in sweep {
        println!("  {ranks:2} GPUs: {t:6.2}s/epoch  speedup {:.2}x", t1 / t);
    }
    println!("paper: 16 GPUs reach ~2.0 s/epoch, an 8.05x speedup over one GPU.");
}
