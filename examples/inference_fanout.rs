//! Inference-with-sampling study (§5 of the paper): train once, then sweep
//! the inference fanout and watch accuracy saturate toward the
//! full-neighborhood reference — the observation that lets SALIENT unify
//! training and inference code paths.
//!
//! Run: `cargo run --release --example inference_fanout`

use salient_repro::core::{RunConfig, Trainer};
use salient_repro::graph::DatasetConfig;
use std::sync::Arc;

fn main() {
    let mut cfg = DatasetConfig::products_sim(0.15);
    cfg.split_fracs = (0.5, 0.1, 0.4);
    let dataset = Arc::new(cfg.build());
    let run = RunConfig {
        num_layers: 3,
        hidden: 64,
        train_fanouts: vec![15, 10, 5],
        infer_fanouts: vec![20, 20, 20],
        batch_size: 128,
        learning_rate: 5e-3,
        epochs: 20,
        ..RunConfig::default()
    };
    let mut trainer = Trainer::new(Arc::clone(&dataset), run);
    println!("training 3-layer GraphSAGE with fanout (15,10,5)...");
    trainer.fit();

    let test = dataset.splits.test.clone();
    let (full, _) = trainer.evaluate_full(&test);
    println!("\nfull-neighborhood (layer-wise) test accuracy: {full:.4}\n");
    println!("{:>14} | {:>8} | {:>8}", "infer fanout", "accuracy", "gap");
    for d in [1usize, 2, 3, 5, 10, 20, 50] {
        let (acc, _) = trainer.evaluate_sampled(&test, &[d, d, d]);
        println!("{:>14} | {acc:>8.4} | {:>+8.4}", format!("({d},{d},{d})"), acc - full);
    }
    println!("\nExpected: the gap shrinks to ~0 by fanout 20 (paper Table 6), so sampled");
    println!("inference can replace memory-hungry layer-wise full inference.");
}
