//! Observability end-to-end, in two parts:
//!
//! 1. A small SALIENT-executor training run on a deterministic
//!    `VirtualClock`, exporting every view the trace subsystem offers and
//!    structurally validating them with the in-repo JSON parser.
//! 2. When the thread budget covers the threaded stage-graph schedule
//!    (`SALIENT_NUM_THREADS` ≥ 3), a monotonic-clock run at ms-scale batch
//!    sizes that measures *real* prep/compute overlap (the paper's
//!    Figure-4 pipelining win) and records `overlap_frac`.
//!
//! Emits (at the workspace root / `target/`):
//!
//! * a human-readable stall-attribution report on stdout;
//! * `target/trace_pipeline.json` — Chrome trace-event timeline
//!   (load in `chrome://tracing` or Perfetto);
//! * `target/metrics_pipeline.json` — raw counters / gauges / histograms;
//! * `BENCH_pipeline.json` — the per-stage breakdown in the same style as
//!   `BENCH_kernels.json`, for CI trend tracking. Its top-level
//!   `overlap_frac` comes from the threaded monotonic run when one ran
//!   (see `overlap.mode`), since overlap is a wall-clock phenomenon.
//!
//! Exits non-zero if any exported artifact fails validation, so
//! `scripts/ci.sh` can use this binary as its observability tier.
//!
//! Run: `SALIENT_NUM_THREADS=3 cargo run --release --example observe_pipeline`

use salient_repro::bench::harness::{write_json, Json};
use salient_repro::core::{ExecutorKind, RunConfig, Trainer};
use salient_repro::graph::DatasetConfig;
use salient_repro::pipeline::shape;
use salient_repro::tensor::pool;
use salient_repro::trace::critical_path::{batch_chains, summarize, Replay};
use salient_repro::trace::export::{chrome_trace, metrics_json, render_report};
use salient_repro::trace::json::validate_chrome_trace;
use salient_repro::trace::{analyze, names, BlackboxConfig, Clock, Trace};
use std::sync::Arc;

/// Threaded-schedule overlap measurement on the real clock. Returns the
/// JSON summary block plus the measured overlap fraction.
///
/// The dataset and batch size are chosen so one batch costs milliseconds —
/// large against scheduler noise, small enough that the whole epoch stays
/// around a second. The stage-graph executor picks the threaded schedule
/// on its own (same `run()` entry point as production); this function only
/// *measures* it.
fn overlap_run() -> (Json, f64) {
    let trace = Trace::new(Clock::monotonic());
    let dataset = Arc::new(DatasetConfig::products_sim(1.0).build());
    // Inference-scale fanouts with a slim hidden layer keep the workload
    // prep-heavy — the regime the paper pipelines for (sampling + slicing
    // dominate; Table 1 attributes only ~28% to GPU compute).
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        epochs: 2,
        num_workers: 4,
        batch_size: 64,
        slots: 3,
        hidden: 8,
        train_fanouts: vec![30, 25, 20],
        infer_fanouts: vec![30, 25, 20],
        ..RunConfig::default()
    };
    let mut trainer = Trainer::with_trace(Arc::clone(&dataset), run, trace.clone());
    let stats = trainer.fit();
    let snap = trace.snapshot();
    let report = analyze(&snap);
    let frac = report.overlap_frac();
    if std::env::var("SALIENT_OVERLAP_DEBUG").is_ok() {
        println!("{}", render_report(&report, &snap));
    }
    println!(
        "overlap run: {} batches, compute {:.1} ms, overlap {:.1} ms ({:.0}% of compute)",
        stats.iter().map(|s| s.batches).sum::<usize>(),
        report.compute_ns as f64 / 1e6,
        report.overlap_ns as f64 / 1e6,
        100.0 * frac
    );
    let fill = snap
        .metrics
        .histogram(names::hists::PIPE_FILL_NS)
        .map(|h| h.count)
        .unwrap_or(0);
    let obj = Json::Obj(vec![
        ("mode".into(), Json::Str("threaded".into())),
        ("threads".into(), Json::Num(pool::num_threads() as f64)),
        ("overlap_frac".into(), Json::Num(frac)),
        (
            "compute_ms".into(),
            Json::Num(report.compute_ns as f64 / 1e6),
        ),
        (
            "overlap_ms".into(),
            Json::Num(report.overlap_ns as f64 / 1e6),
        ),
        (
            "window_ms".into(),
            Json::Num(report.window_ns as f64 / 1e6),
        ),
        // Pipeline warmup: the first batch's wait is recorded as fill
        // (`pipe.fill_ns`, one entry per epoch), not as a steady-state
        // prep stall — so `prep_wait` percentiles describe the pipelined
        // regime, not the unavoidable cold start.
        ("pipe_fill_count".into(), Json::Num(fill as f64)),
    ]);
    (obj, frac)
}

fn main() {
    // A virtual clock that advances 1µs per read: the run is scheduled by
    // real threads but every timestamp comes from the registry's clock, so
    // the exported artifacts are structurally identical run-to-run. The
    // attached flight recorder mirrors every event into bounded per-thread
    // rings (dumped only on faults — none here, so it must stay silent).
    let trace = Trace::with_blackbox(Clock::virtual_with_tick(1_000), BlackboxConfig::default());
    let dataset = Arc::new(DatasetConfig::tiny(3).build());
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        epochs: 2,
        num_workers: 2,
        ..RunConfig::test_tiny()
    };
    let prefetch = 2 * run.num_workers;
    let mut trainer = Trainer::with_trace(Arc::clone(&dataset), run, trace.clone());
    for stats in trainer.fit() {
        println!(
            "epoch {}: loss {:.4} ({} batches)",
            stats.epoch, stats.mean_loss, stats.batches
        );
    }

    let snap = trace.snapshot();
    let report = analyze(&snap);
    println!("\n{}", render_report(&report, &snap));

    // The four stage shares partition the trainer's epoch wall-clock.
    let pcts = report.stage_pcts();
    let sum: f64 = pcts.iter().sum();
    assert!(
        (sum - 100.0).abs() < 1e-6,
        "stage percentages must sum to 100, got {sum} ({pcts:?})"
    );

    // Chrome trace: validated structurally with the in-repo parser before
    // anything downstream (chrome://tracing, Perfetto) ever sees it.
    let chrome = chrome_trace(&snap);
    let summary = validate_chrome_trace(&chrome).expect("exported Chrome trace is valid");
    assert!(
        summary.distinct_tids >= 3,
        "trainer + 2 workers should appear: {summary:?}"
    );
    std::fs::create_dir_all("target").expect("create target/");
    std::fs::write("target/trace_pipeline.json", &chrome).expect("write Chrome trace");
    println!(
        "chrome trace: {} spans, {} instants on {} threads -> target/trace_pipeline.json",
        summary.span_events, summary.instant_events, summary.distinct_tids
    );

    let metrics = metrics_json(&snap);
    std::fs::write("target/metrics_pipeline.json", &metrics).expect("write metrics");
    println!("metrics snapshot -> target/metrics_pipeline.json");

    // Byte counters: workers stage `prep.bytes` into pinned slots and the
    // trainer pulls `transfer.bytes` through the transfer stage, both at the
    // feature store's packed dtype — so with f16 storage these are ~half of
    // what an f32 store would report. They agree on every batch the trainer
    // actually consumed (prep may stage more if an epoch is cut short).
    let prep_bytes = snap.metrics.counter(names::counters::PREP_BYTES);
    let transfer_bytes = snap.metrics.counter(names::counters::TRANSFER_BYTES);
    assert!(transfer_bytes > 0, "trainer must record transfer bytes");
    assert!(
        transfer_bytes <= prep_bytes,
        "trainer cannot consume more than the workers staged \
         ({transfer_bytes} > {prep_bytes})"
    );
    println!(
        "bytes: staged {prep_bytes}, transferred {transfer_bytes} ({} features)",
        dataset.features.dtype()
    );

    // Part 2: measure real pipelining when the thread budget covers the
    // threaded schedule (two executor stages + the consumer). The virtual
    // run above cannot show wall-clock overlap, so its value would gate
    // nothing; the monotonic threaded run is the authoritative number.
    let (overlap_obj, overlap_frac) = if pool::num_threads() > 2 {
        overlap_run()
    } else {
        println!(
            "overlap run skipped: SALIENT_NUM_THREADS={} (the threaded \
             schedule needs >= 3)",
            pool::num_threads()
        );
        (
            Json::Obj(vec![
                ("mode".into(), Json::Str("skipped(single-thread)".into())),
                ("threads".into(), Json::Num(pool::num_threads() as f64)),
            ]),
            report.overlap_frac(),
        )
    };

    // BENCH_kernels.json-style summary for CI trend tracking.
    let hist = |name: &str| -> Json {
        match snap.metrics.histogram(name) {
            Some(h) => {
                let (p50, p95, p99) = h.percentiles();
                Json::Obj(vec![
                    ("count".into(), Json::Num(h.count as f64)),
                    ("p50_ns".into(), Json::Num(p50 as f64)),
                    ("p95_ns".into(), Json::Num(p95 as f64)),
                    ("p99_ns".into(), Json::Num(p99 as f64)),
                ])
            }
            None => Json::Obj(vec![("count".into(), Json::Num(0.0))]),
        }
    };
    // Per-batch causal chains: charge every nanosecond of every batch's
    // latency to a named category, then project what doubling the compute
    // stage's speed would buy (the what-if answer CI cross-checks against
    // the sim plane in tests/critical_path.rs).
    let chains = batch_chains(&snap);
    let attr = summarize(&chains);
    let chain_total = attr.total_ns.max(1);
    let cat_pct: Vec<(String, Json)> = attr
        .categories()
        .iter()
        .map(|(label, ns)| {
            (
                (*label).to_string(),
                Json::Num(100.0 * *ns as f64 / chain_total as f64),
            )
        })
        .collect();
    // `queued` is the only residual bucket (no recorded span active); the
    // acceptance bar is >= 90% of chain time under named categories.
    let queued_pct = 100.0 * attr.queued_ns as f64 / chain_total as f64;
    let named_pct = 100.0 - queued_pct;
    assert!(
        named_pct >= 90.0,
        "critical path must attribute >= 90% of chain time to named \
         categories, got {named_pct:.1}% (queued {queued_pct:.1}%)"
    );
    let what_if = Replay::from_snapshot(&snap, shape::TRANSFER_QUEUE_CAP, prefetch)
        .map(|r| r.what_if(2, 2.0));
    if let Some(w) = &what_if {
        println!(
            "what-if train 2x: baseline {:.3} ms -> projected {:.3} ms (speedup {:.2}x)",
            w.baseline_ns as f64 / 1e6,
            w.projected_ns as f64 / 1e6,
            w.speedup
        );
    }
    // No fault fired in this run, so the always-on flight recorder must not
    // have dumped anything.
    let dumps = snap.metrics.counter(names::counters::BLACKBOX_DUMPS);
    assert_eq!(dumps, 0, "clean run must not trigger a blackbox dump");

    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("pipeline_observability".into())),
        ("clock".into(), Json::Str("virtual(tick=1us)".into())),
        (
            "stages_pct".into(),
            Json::Obj(vec![
                ("prep".into(), Json::Num(pcts[0])),
                ("transfer".into(), Json::Num(pcts[1])),
                ("train".into(), Json::Num(pcts[2])),
                // `other` decomposed into its named parts (they sum to it
                // exactly, so the six shares still partition the window).
                ("fill".into(), Json::Num(report.pct(report.fill_ns))),
                ("idle".into(), Json::Num(report.pct(report.idle_ns))),
                (
                    "shutdown".into(),
                    Json::Num(report.pct(report.shutdown_ns)),
                ),
            ]),
        ),
        (
            "critical_path".into(),
            Json::Obj(vec![
                ("batches".into(), Json::Num(chains.len() as f64)),
                ("total_ns".into(), Json::Num(attr.total_ns as f64)),
                ("named_pct".into(), Json::Num(named_pct)),
                ("categories_pct".into(), Json::Obj(cat_pct)),
                (
                    "what_if_train_2x".into(),
                    match &what_if {
                        Some(w) => Json::Obj(vec![
                            ("baseline_ns".into(), Json::Num(w.baseline_ns as f64)),
                            ("projected_ns".into(), Json::Num(w.projected_ns as f64)),
                            ("speedup".into(), Json::Num(w.speedup)),
                        ]),
                        None => Json::Obj(vec![]),
                    },
                ),
            ]),
        ),
        ("window_ns".into(), Json::Num(report.window_ns as f64)),
        ("overlap_frac".into(), Json::Num(overlap_frac)),
        ("overlap".into(), overlap_obj),
        (
            "batches".into(),
            Json::Num(snap.metrics.counter(names::counters::BATCHES) as f64),
        ),
        (
            "dtype".into(),
            Json::Str(dataset.features.dtype().to_string()),
        ),
        ("prep_bytes".into(), Json::Num(prep_bytes as f64)),
        ("transfer_bytes".into(), Json::Num(transfer_bytes as f64)),
        ("prep_batch".into(), hist(names::hists::PREP_BATCH_NS)),
        ("train_batch".into(), hist(names::hists::TRAIN_BATCH_NS)),
        ("prep_wait".into(), hist(names::hists::PREP_WAIT_NS)),
        (
            "threads".into(),
            Json::Num(summary.distinct_tids as f64),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_pipeline.json");
    write_json(path, &doc).expect("write BENCH_pipeline.json");
    println!("per-stage breakdown -> BENCH_pipeline.json");
    println!("\nobservability tier OK");
}
