//! Quickstart: train a 3-layer GraphSAGE with SALIENT's pipelined batch
//! preparation on a synthetic arxiv-like dataset, then run sampled
//! inference.
//!
//! Run: `cargo run --release --example quickstart`

use salient_repro::core::{ExecutorKind, RunConfig, Trainer};
use salient_repro::graph::DatasetConfig;
use std::sync::Arc;

fn main() {
    // 1. Build a dataset: a power-law community graph with planted labels
    //    and half-precision node features, ogbn-arxiv-like in shape.
    let mut cfg = DatasetConfig::arxiv_sim(0.25);
    cfg.split_fracs = (0.5, 0.2, 0.3);
    let dataset = Arc::new(cfg.build());
    println!(
        "dataset {}: {} nodes, {} edges, {} classes, {} train / {} val / {} test",
        dataset.name,
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.num_classes,
        dataset.splits.train.len(),
        dataset.splits.val.len(),
        dataset.splits.test.len(),
    );

    // 2. Configure the run: SALIENT executor, Table-5-style hyperparameters
    //    shrunk for the single-core environment.
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        num_layers: 3,
        hidden: 64,
        train_fanouts: vec![15, 10, 5],
        infer_fanouts: vec![20, 20, 20],
        batch_size: 128,
        learning_rate: 5e-3,
        epochs: 10,
        num_workers: 2,
        slots: 4,
        seed: 0,
        ..RunConfig::default()
    };

    // 3. Train.
    let mut trainer = Trainer::new(Arc::clone(&dataset), run);
    for stats in trainer.fit() {
        println!(
            "epoch {:2}: loss {:.4}  ({} batches, {:.2}s; prep {:.2}s transfer {:.2}s train {:.2}s)",
            stats.epoch,
            stats.mean_loss,
            stats.batches,
            stats.timings.total_s,
            stats.timings.prep_s,
            stats.timings.transfer_s,
            stats.timings.train_s,
        );
    }

    // 4. Sampled inference at fanout (20,20,20) — the paper's headline
    //    observation is that this matches full-neighborhood accuracy.
    let test = dataset.splits.test.clone();
    let (sampled, _) = trainer.evaluate_sampled(&test, &[20, 20, 20]);
    let (full, _) = trainer.evaluate_full(&test);
    println!("test accuracy: sampled(20,20,20) {sampled:.4} vs full neighborhood {full:.4}");
}
