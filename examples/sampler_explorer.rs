//! Explore the neighborhood-sampler design space interactively: benchmark a
//! handful of interesting variants (plus the tuned FastSampler and the
//! PyG-style baseline) on one dataset and inspect the MFG statistics that
//! drive downstream slicing and transfer volume.
//!
//! Run: `cargo run --release --example sampler_explorer`

use salient_repro::graph::DatasetConfig;
use salient_repro::sampler::{
    FastSampler, PygSampler, SampleAlgo, VariantConfig, VariantSampler,
};
use std::time::Instant;

fn main() {
    let ds = DatasetConfig::products_sim(0.2).build();
    let fanouts = [15usize, 10, 5];
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();

    // MFG anatomy from the production sampler.
    let mfg = FastSampler::new(0).sample(&ds.graph, &batch, &fanouts);
    println!("one batch of {} seeds, fanout {:?}:", batch.len(), fanouts);
    println!("  sampled nodes: {}", mfg.num_nodes());
    println!("  sampled edges: {}", mfg.num_edges());
    for (i, layer) in mfg.layers.iter().enumerate() {
        println!(
            "  layer {i}: {} -> {} rows, {} edges",
            layer.n_src,
            layer.n_dst,
            layer.num_edges()
        );
    }
    println!(
        "  bytes to transfer: {} structure + {} features (f16)\n",
        mfg.structure_bytes(),
        mfg.num_nodes() * ds.features.dim() * 2,
    );

    // Compare a few named design-space points.
    let reps = 20;
    let time_it = |label: &str, mut f: Box<dyn FnMut() -> usize>| {
        let _ = f(); // warm-up
        let t = Instant::now();
        let mut edges = 0;
        for _ in 0..reps {
            edges += f();
        }
        let per = t.elapsed().as_secs_f64() / reps as f64 * 1e3;
        println!("  {label:<44} {per:7.2} ms/batch ({} edges)", edges / reps);
        per
    };

    println!("variant timings ({reps} reps each):");
    let g = &ds.graph;
    let b = batch.clone();
    let mut pyg = PygSampler::new(1);
    let base_ms = time_it(
        "PygSampler (STL map/set, 2-phase, rejection)",
        Box::new(move || pyg.sample(g, &b, &fanouts).num_edges()),
    );
    let b = batch.clone();
    let mut fast = FastSampler::new(1);
    let fast_ms = time_it(
        "FastSampler (flat map, array set, fused, FY)",
        Box::new(move || fast.sample(g, &b, &fanouts).num_edges()),
    );
    for cfg in [
        VariantConfig {
            id_map: salient_repro::sampler::IdMapKind::Flat,
            neighbor_set: salient_repro::sampler::NeighborSetKind::Std,
            fused: true,
            reserve: true,
            algo: SampleAlgo::Rejection,
        },
        VariantConfig {
            id_map: salient_repro::sampler::IdMapKind::Std,
            neighbor_set: salient_repro::sampler::NeighborSetKind::Array,
            fused: true,
            reserve: true,
            algo: SampleAlgo::PartialFisherYates,
        },
    ] {
        let b = batch.clone();
        let mut v = VariantSampler::new(cfg, 1);
        time_it(
            &format!("variant {}", cfg.label()),
            Box::new(move || v.sample(g, &b, &fanouts).num_edges()),
        );
    }
    println!("\nFastSampler speedup over PyG-style baseline: {:.2}x (paper: ~2.5x)", base_ms / fast_ms);
}
