//! Online inference serving end-to-end: trains a small model, then drives
//! the serving core through an open-loop Poisson arrival sweep on the real
//! clock — below the knee, near the knee, and well past it — emitting the
//! latency–throughput frontier to `BENCH_serving.json`.
//!
//! The point of the sweep is the *overload* column: with admission control,
//! deadlines, and the degradation ladder in place, pushing offered load to
//! 2× capacity must shed requests (typed, counted) instead of letting p99
//! run away or throughput collapse. Both properties are asserted in-bench,
//! so `scripts/ci.sh` can use this binary as its serving tier:
//!
//! * below the knee nothing is shed;
//! * at 2× capacity, p99 stays under 5× the knee p99 (the bounded queue
//!   caps how much waiting a completed request can accumulate) and
//!   completed throughput stays at or above the knee's (no collapse).
//!
//! Run: `cargo run --release --example serve_inference`
//! (`SALIENT_BENCH_SMOKE=1` shortens each load point for CI.)

use salient_repro::bench::harness::{write_json, Json};
use salient_repro::core::{RunConfig, Trainer};
use salient_repro::graph::{Dataset, DatasetConfig};
use salient_repro::serve::{loadgen, Request, Response, ServeConfig, ServerCore};
use salient_repro::trace::{names, Clock, Trace};
use std::sync::Arc;
use std::time::Duration;

fn serve_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 16,
        // A few micro-batches of headroom: deep enough to absorb OS
        // scheduling jitter at low load, and still the bound that keeps
        // overload p99 a small multiple of the knee p99.
        queue_capacity: 96,
        seed: 5,
        ..ServeConfig::default()
    }
}

/// A fresh serving core (same seed every time, so every load point serves
/// the identical model) on the real clock with its own trace registry.
fn build_core(dataset: &Arc<Dataset>) -> ServerCore {
    let mut trainer = Trainer::new(Arc::clone(dataset), RunConfig::test_tiny());
    trainer.train_epoch();
    let model = trainer.into_model();
    ServerCore::new(
        model,
        Arc::clone(dataset),
        serve_cfg(),
        Trace::new(Clock::monotonic()),
    )
}

struct PointStats {
    offered: usize,
    missed: usize,
    completed: u64,
    shed_overload: u64,
    shed_infeasible: u64,
    expired: u64,
    degrades: u64,
    throughput_rps: f64,
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
}

/// Open-loop catch-up driver: arrivals are submitted as their instants
/// pass on the real clock, micro-batches run whenever work is queued, and
/// everything left drains at the end. Deadlines are absolute
/// (`start + at + budget`), so a server running behind sheds late work as
/// infeasible instead of serving it uselessly.
fn drive(core: &mut ServerCore, arrivals: &[loadgen::Arrival]) -> PointStats {
    let clock = core.clock();
    // Warm the pipeline (allocator, feature pages, GEMM buffers) so the
    // first measured batches don't stall behind cold-start page faults.
    for round in 0..4u64 {
        for i in 0..16u64 {
            let req = Request {
                id: u64::MAX - round * 16 - i,
                node: ((round * 16 + i) % 512) as u32,
                deadline_ns: clock.now_ns() + 1_000_000_000,
            };
            let _ = core.submit(req);
        }
        core.step();
    }
    let warm = core.trace().snapshot();
    let warm_completed = warm.metrics.counter(names::counters::SERVE_COMPLETED);
    let t0 = clock.now_ns();
    let mut next = 0usize;
    let mut missed = 0usize;
    // How far behind an arrival instant the driver may run before the
    // arrival is dropped at the source. The server keeps the driver at
    // most one micro-batch (~tens of µs) behind even at 2x overload; only
    // a host-scheduler freeze of the whole process pushes past this — and
    // a frozen process means the load generator was frozen too, so a real
    // client would never have sent those requests. Replaying the whole
    // freeze window into admission at once would overflow the queue as a
    // driver artifact, not as offered load.
    const STALE_NS: u64 = 300_000;
    while next < arrivals.len() || core.pending() > 0 {
        let now = clock.now_ns().saturating_sub(t0);
        while next < arrivals.len() && arrivals[next].at_ns <= now {
            let a = arrivals[next];
            if now - a.at_ns > STALE_NS {
                missed += 1;
                next += 1;
                continue;
            }
            let req = Request {
                id: next as u64,
                node: a.node,
                deadline_ns: t0 + a.at_ns + a.budget_ns,
            };
            // Rejections are already counted by the shed counters.
            let _ = core.submit(req);
            next += 1;
        }
        if core.pending() > 0 {
            for (_, resp) in core.step().responses {
                debug_assert!(!matches!(resp, Response::Rejected(_)));
            }
        } else if next < arrivals.len() {
            // Spin for short gaps: an OS sleep overshoots by tens of µs
            // (timer slack), and the burst of overdue arrivals on wake-up
            // would overflow the queue as a driver artifact rather than
            // offered load.
            let wait = arrivals[next].at_ns.saturating_sub(now);
            if wait > 1_000_000 {
                std::thread::sleep(Duration::from_nanos(wait - 500_000));
            } else {
                std::hint::spin_loop();
            }
        }
    }
    let elapsed_s = (clock.now_ns() - t0) as f64 / 1e9;
    let snap = core.trace().snapshot();
    let c = |name: &str| snap.metrics.counter(name);
    let (p50_ns, p95_ns, p99_ns) = snap
        .metrics
        .histogram(names::hists::SERVE_LATENCY_NS)
        .map(|h| h.percentiles())
        .unwrap_or((0, 0, 0));
    let completed = c(names::counters::SERVE_COMPLETED) - warm_completed;
    PointStats {
        offered: arrivals.len() - missed,
        missed,
        completed,
        shed_overload: c(names::counters::SERVE_SHED_OVERLOAD),
        shed_infeasible: c(names::counters::SERVE_SHED_INFEASIBLE),
        expired: c(names::counters::SERVE_EXPIRED),
        degrades: c(names::counters::SERVE_DEGRADES),
        throughput_rps: completed as f64 / elapsed_s,
        p50_ns,
        p95_ns,
        p99_ns,
    }
}

fn main() {
    let smoke = std::env::var("SALIENT_BENCH_SMOKE").is_ok();
    let dataset = Arc::new(DatasetConfig::tiny(5).build());
    let num_nodes = dataset.graph.num_nodes();

    // Calibration: closed-loop full batches measure the service capacity
    // the open-loop sweep is scaled against, and the per-batch service
    // quantum the p99 assertion is floored with.
    let (capacity_rps, batch_service_ns) = {
        let mut core = build_core(&dataset);
        let clock = core.clock();
        let t0 = clock.now_ns();
        let batches: u64 = if smoke { 8 } else { 24 };
        let mut served = 0u64;
        for b in 0..batches {
            for i in 0..16u64 {
                let id = b * 16 + i;
                let req = Request {
                    id,
                    node: (id % num_nodes as u64) as u32,
                    deadline_ns: clock.now_ns() + 1_000_000_000,
                };
                core.submit(req).expect("closed-loop admission");
            }
            served += core.step().responses.len() as u64;
        }
        let elapsed = clock.now_ns() - t0;
        (served as f64 / (elapsed as f64 / 1e9), elapsed / batches)
    };
    println!(
        "calibrated capacity: {capacity_rps:.0} req/s ({batch_service_ns} ns per full batch)"
    );

    let duration_ns: u64 = if smoke { 300_000_000 } else { 500_000_000 };
    let budget_ns: u64 = 50_000_000; // 50 ms per-request deadline budget
    let load_factors = [0.3f64, 0.7, 2.0];
    let run_sweep = |attempt: u64| -> Vec<(f64, f64, PointStats)> {
        let mut points = Vec::new();
        for (i, &f) in load_factors.iter().enumerate() {
            let rate = capacity_rps * f;
            let arrivals = loadgen::poisson_trace(
                11 + i as u64 + 100 * attempt,
                rate,
                duration_ns,
                num_nodes,
                budget_ns,
            );
            let mut core = build_core(&dataset);
            let stats = drive(&mut core, &arrivals);
            println!(
                "load {f:.1}x ({rate:.0} req/s): offered {} (missed {}) completed {} shed {}+{} \
                 expired {} degrades {} | {:.0} req/s served, p50 {:.2} ms p99 {:.2} ms",
                stats.offered,
                stats.missed,
                stats.completed,
                stats.shed_overload,
                stats.shed_infeasible,
                stats.expired,
                stats.degrades,
                stats.throughput_rps,
                stats.p50_ns as f64 / 1e6,
                stats.p99_ns as f64 / 1e6,
            );
            points.push((f, rate, stats));
        }
        points
    };

    // --- The serving contract, checked on the measured frontier --------
    let check_contract = |points: &[(f64, f64, PointStats)]| -> Result<(), String> {
        let below_knee = &points[0].2;
        if below_knee.shed_overload != 0 {
            return Err(format!(
                "no overload shedding below the knee (shed {})",
                below_knee.shed_overload
            ));
        }
        if below_knee.shed_infeasible != 0 {
            return Err(format!(
                "50 ms budgets are feasible at low load (shed {})",
                below_knee.shed_infeasible
            ));
        }
        let knee = &points[1].2;
        let overload = &points[2].2;
        if overload.shed_overload == 0 {
            return Err("2x capacity must shed".into());
        }
        // The knee p99 is floored at two batch service quanta: a knee run
        // that happens to see no queueing at all reports a single batch
        // time, and dividing by that degenerate value would turn the ratio
        // check into a coin flip on scheduler noise rather than a
        // statement about the bounded queue.
        let knee_p99 = knee.p99_ns.max(2 * batch_service_ns);
        if knee.p99_ns == 0 || overload.p99_ns >= 5 * knee_p99 {
            return Err(format!(
                "overload p99 must stay within 5x of the knee p99 \
                 (knee {} ns, floored {knee_p99} ns, overload {} ns)",
                knee.p99_ns, overload.p99_ns
            ));
        }
        if overload.throughput_rps < 0.7 * knee.throughput_rps {
            return Err(format!(
                "admission control must prevent throughput collapse \
                 (knee {:.0} req/s, overload {:.0} req/s)",
                knee.throughput_rps, overload.throughput_rps
            ));
        }
        Ok(())
    };

    // One retry absorbs a transient multi-millisecond scheduler freeze on a
    // shared host (which can overflow the bounded queue at low load through
    // no fault of the admission policy); the contract itself is never
    // weakened — it must hold in full on a clean window.
    let mut points = run_sweep(0);
    if let Err(reason) = check_contract(&points) {
        println!("sweep violated the serving contract ({reason}); retrying once");
        points = run_sweep(1);
        if let Err(reason) = check_contract(&points) {
            panic!("serving contract failed on both sweeps: {reason}");
        }
    }

    let point_json = |(f, rate, s): &(f64, f64, PointStats)| -> Json {
        Json::Obj(vec![
            ("load_factor".into(), Json::Num(*f)),
            ("offered_rps".into(), Json::Num(*rate)),
            ("offered".into(), Json::Num(s.offered as f64)),
            ("missed".into(), Json::Num(s.missed as f64)),
            ("completed".into(), Json::Num(s.completed as f64)),
            ("shed_overload".into(), Json::Num(s.shed_overload as f64)),
            ("shed_infeasible".into(), Json::Num(s.shed_infeasible as f64)),
            ("expired".into(), Json::Num(s.expired as f64)),
            ("degrades".into(), Json::Num(s.degrades as f64)),
            ("throughput_rps".into(), Json::Num(s.throughput_rps)),
            ("p50_ns".into(), Json::Num(s.p50_ns as f64)),
            ("p95_ns".into(), Json::Num(s.p95_ns as f64)),
            ("p99_ns".into(), Json::Num(s.p99_ns as f64)),
        ])
    };
    let doc = Json::Obj(vec![
        ("bench".into(), Json::Str("serving_frontier".into())),
        ("clock".into(), Json::Str("monotonic".into())),
        ("capacity_rps".into(), Json::Num(capacity_rps)),
        ("budget_ms".into(), Json::Num(budget_ns as f64 / 1e6)),
        ("max_batch".into(), Json::Num(serve_cfg().max_batch as f64)),
        (
            "queue_capacity".into(),
            Json::Num(serve_cfg().queue_capacity as f64),
        ),
        ("points".into(), Json::Arr(points.iter().map(point_json).collect())),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serving.json");
    write_json(path, &doc).expect("write BENCH_serving.json");
    println!("latency-throughput frontier -> BENCH_serving.json");
    println!("\nserving tier OK");
}
