//! Drive the discrete-event cluster simulator directly: walk the Table-3
//! optimization ladder on every paper dataset, then render the Figure-1
//! execution timeline contrast.
//!
//! Run: `cargo run --release --example simulate_cluster`

use salient_repro::graph::DatasetStats;
use salient_repro::sim::{
    render_text, simulate_epoch, simulate_epoch_detailed, CostModel, EpochConfig, OptLevel,
};

fn main() {
    let model = CostModel::paper_hardware();

    println!("optimization ladder (virtual seconds per epoch):\n");
    println!("{:<30} {:>8} {:>10} {:>8}", "configuration", "arxiv", "products", "papers");
    for level in OptLevel::ladder() {
        let mut row = format!("{:<30}", level.label());
        for stats in DatasetStats::all() {
            let r = simulate_epoch(&EpochConfig::paper_default(stats, level), &model);
            row.push_str(&format!(" {:>8.2}", r.epoch_s));
        }
        println!("{row}");
    }

    println!("\nGPU utilization, baseline vs SALIENT (products):");
    for level in [OptLevel::PygBaseline, OptLevel::Pipelined] {
        let r = simulate_epoch(
            &EpochConfig::paper_default(DatasetStats::products(), level),
            &model,
        );
        println!("  {:<30} {:>5.1}%", level.label(), r.gpu_util * 100.0);
    }

    println!("\nfirst 200 ms of the SALIENT pipeline (products, 4 workers):\n");
    let cfg = EpochConfig {
        cpu_workers: 4,
        ..EpochConfig::paper_default(DatasetStats::products(), OptLevel::Pipelined)
    };
    let (_, sim, ex) = simulate_epoch_detailed(&cfg, &model);
    println!("{}", render_text(&sim, &ex, 200_000_000, 96));
}
