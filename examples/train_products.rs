//! The paper's motivating workload: mini-batch GraphSAGE training on a
//! products-like co-purchase graph, comparing the standard (baseline)
//! executor against SALIENT's pipelined executor and printing a Table-1
//! style per-stage blocking breakdown for both.
//!
//! Run: `cargo run --release --example train_products [-- --scale 0.2]`

use salient_repro::core::{ExecutorKind, RunConfig, Stage, Trainer};
use salient_repro::graph::DatasetConfig;
use std::sync::Arc;

fn main() {
    let scale: f64 = std::env::args()
        .skip_while(|a| a != "--scale")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.2);
    let mut cfg = DatasetConfig::products_sim(scale);
    cfg.split_fracs = (0.4, 0.1, 0.5);
    let dataset = Arc::new(cfg.build());
    println!(
        "products-sim (scale {scale}): {} nodes, {} edges, avg degree {:.1}\n",
        dataset.graph.num_nodes(),
        dataset.graph.num_edges(),
        dataset.graph.avg_degree(),
    );

    for executor in [ExecutorKind::Baseline, ExecutorKind::Salient] {
        let run = RunConfig {
            executor,
            num_layers: 3,
            hidden: 64,
            train_fanouts: vec![15, 10, 5],
            infer_fanouts: vec![20, 20, 20],
            batch_size: 256,
            learning_rate: 5e-3,
            epochs: 3,
            num_workers: 2,
            ..RunConfig::default()
        };
        let mut trainer = Trainer::new(Arc::clone(&dataset), run);
        println!("=== {executor:?} executor ===");
        for stats in trainer.fit() {
            let t = stats.timings;
            println!(
                "epoch {:2}: loss {:.4}  epoch {:.2}s | prep {:.2}s ({:.0}%) transfer {:.2}s ({:.0}%) train {:.2}s ({:.0}%)",
                stats.epoch,
                stats.mean_loss,
                t.total_s,
                t.prep_s,
                t.pct(Stage::Prep),
                t.transfer_s,
                t.pct(Stage::Transfer),
                t.train_s,
                t.pct(Stage::Train),
            );
        }
        let (acc, _) = trainer.evaluate_sampled(&dataset.splits.val.clone(), &[20, 20, 20]);
        println!("validation accuracy {acc:.4}\n");
    }
    println!("Note: on one core the SALIENT executor still wins on prep *blocking* time");
    println!("(workers overlap with training), mirroring the paper's Figure 1 contrast.");
}
