#!/usr/bin/env bash
# CI entry point: static analysis + offline build + full test suite.
#
# The lint tier runs first: salient-lint (crates/lint) enforces the
# workspace's standing invariants — documented unsafe, panic-free hot
# paths, no wall-clock reads outside trace/sim/bench/CLI code (pipeline
# code stamps time through trace::Clock), acyclic lock
# orders, and dependency freedom (std only, path deps between the
# salient-* crates, so `--offline` can never silently start meaning
# "from the local registry cache").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: workspace invariants (salient-lint)"
# Text mode prints the per-rule finding table and wall time, so a
# lint-cost regression (a rule suddenly slow or noisy) is visible in the
# CI log, not just the exit code.
cargo run -q --release -p salient-lint --offline -- check

echo "== lint: machine-readable diagnostics + call-graph artifacts"
mkdir -p target
# The JSON diagnostics are the CI artifact downstream tooling consumes;
# `check` already gated, so `|| true` keeps the artifact write from
# double-failing the tier while the file still records every finding.
cargo run -q --release -p salient-lint --offline -- check --format json \
  > target/lint-report.json || true
test -s target/lint-report.json
# The call graph + per-rule reachability evidence. `graph` self-validates
# through the in-repo JSON parser before printing.
cargo run -q --release -p salient-lint --offline -- graph > target/lint-callgraph.json
test -s target/lint-callgraph.json

echo "== lint: dependency-freedom guard (salient-lint deps)"
cargo run -q --release -p salient-lint --offline -- deps

echo "== build (release, offline)"
cargo build --release --offline

echo "== tests (workspace, offline)"
cargo test --workspace -q --offline

echo "== fault tier: deterministic fault-injection matrix"
# The matrix installs its own scoped plans; the fixed seed here pins the
# probabilistic-trigger schedules so failures reproduce bit-for-bit.
SALIENT_FAULT_SEED=42 cargo test -q --offline --test fault_matrix

echo "== observability tier: instrumented run on a virtual clock"
# A 2-epoch SALIENT-executor run on a VirtualClock: prints the
# stall-attribution report, exports the Chrome trace + metrics snapshot,
# validates both with the in-repo JSON parser (no serde), and writes the
# per-stage breakdown to BENCH_pipeline.json. Exits non-zero if any
# artifact fails validation.
cargo run -q --release --offline --example observe_pipeline
test -s BENCH_pipeline.json
test -s target/trace_pipeline.json
test -s target/metrics_pipeline.json
# The critical-path section is the profiler's acceptance gate: >= 90% of
# every batch's chain extent charged to named causal categories (the
# example itself asserts this; CI re-checks the artifact survived).
grep -q '"critical_path"' BENCH_pipeline.json
grep -q '"named_pct"' BENCH_pipeline.json
# Flight-recorder overhead gate: the counting-allocator suite proves the
# always-on recorder adds zero steady-state allocations per event.
cargo test -q --offline --test trace_overhead
# What-if-vs-sim gate: the replay projector and the discrete-event sim
# must agree on the Pipelined schedule's makespan (and on a faster-GPU
# what-if) within 10%, on the same shape constants.
cargo test -q --offline --test critical_path

echo "== pipeline tier: threaded stage-graph overlap (SALIENT_NUM_THREADS=3)"
# Rerun the observability binary with an explicit thread budget that
# covers the threaded schedule (two executor stages + the consumer), so
# BENCH_pipeline.json records a *real* multi-thread overlap measurement:
# prep/transfer work on dedicated stage threads overlapping model
# compute, the paper's Figure-4 win. The overlap_frac > 0.5 gate needs
# genuine parallelism, so it is skipped (with a notice) on single-core
# runners, where wall-clock overlap is at the scheduler's mercy.
SALIENT_NUM_THREADS=3 cargo run -q --release --offline --example observe_pipeline
overlap_frac=$(grep -m1 '"overlap_frac"' BENCH_pipeline.json | tr -dc '0-9.')
echo "pipeline tier: overlap_frac = ${overlap_frac}"
if [ "$(nproc)" -ge 2 ]; then
  awk -v f="$overlap_frac" 'BEGIN { exit !(f > 0.5) }' || {
    echo "pipeline tier FAILED: overlap_frac ${overlap_frac} <= 0.5"
    exit 1
  }
else
  echo "pipeline tier: single-core runner — overlap_frac gate skipped"
fi

echo "== mixed-precision tier: f16 storage, half GEMM accuracy, byte traffic"
# Integration tests: half GEMM inside the documented
# 2.5*2^-11*(|A|.|B|) elementwise bound, f16 feature stores moving
# <= 55% of the f32 store's transfer.bytes, training parity at both
# dtypes, SALIENT_DTYPE parsing.
cargo test -q --offline --test mixed_precision
# The kernel bench doubles as the acceptance gate: it re-asserts the
# GEMM bound at the full bench shapes and the <= 55% byte criterion on
# the slice+widen path (through the transfer.bytes counter), then
# regenerates BENCH_kernels.json. SALIENT_BENCH_SMOKE shrinks the
# timing batches so this tier stays fast; every assertion still runs.
SALIENT_BENCH_SMOKE=1 cargo bench -q -p salient-bench --bench kernels --offline
test -s BENCH_kernels.json

echo "== serving tier: deadlines, admission control, degradation ladder"
# Deterministic VirtualClock tests first: deadline expiry at every stage
# boundary, breaker open -> half-open -> close, ladder degrade/restore
# hysteresis, and exact replay equality under a seeded bursty trace.
cargo test -q --offline --test serving
# Then the real-clock frontier: trains a model, sweeps Poisson load at
# 0.3x/0.7x/2x calibrated capacity, and asserts the overload contract
# in-bench (no shedding below the knee, typed shedding at 2x, p99 within
# 5x of the knee, no throughput collapse) before writing the frontier.
SALIENT_BENCH_SMOKE=1 cargo run -q --release --offline --example serve_inference
test -s BENCH_serving.json

echo "CI OK"
