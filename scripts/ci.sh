#!/usr/bin/env bash
# CI entry point: offline build + full test suite + dependency-freedom guard.
#
# The workspace is intentionally dependency-free (std only, path deps
# between the salient-* crates). The guard below fails the build if any
# manifest reintroduces a crates.io / git dependency, so `--offline` can
# never silently start meaning "from the local registry cache".
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== guard: no non-path dependencies"
fail=0
for manifest in Cargo.toml crates/*/Cargo.toml; do
  # Inside [dependencies]/[dev-dependencies]/[build-dependencies] (and the
  # workspace.dependencies table), every entry must be a path or workspace
  # dependency. Version-only entries (`foo = "1.0"` or `version = ...`
  # without `path = ...`) and git entries are rejected.
  bad=$(awk '
    /^\[/ { in_dep = ($0 ~ /dependencies\]$/ || $0 ~ /dependencies\./) }
    in_dep && /^[a-zA-Z0-9_-]+[ \t]*=/ {
      if ($0 !~ /path[ \t]*=/ && $0 !~ /workspace[ \t]*=[ \t]*true/) print
    }
    in_dep && /git[ \t]*=/ { print }
  ' "$manifest")
  if [ -n "$bad" ]; then
    echo "non-path dependency in $manifest:" >&2
    echo "$bad" >&2
    fail=1
  fi
done
if [ "$fail" -ne 0 ]; then
  echo "dependency-freedom guard FAILED" >&2
  exit 1
fi
echo "ok"

echo "== build (release, offline)"
cargo build --release --offline

echo "== tests (workspace, offline)"
cargo test --workspace -q --offline

echo "== fault tier: deterministic fault-injection matrix"
# The matrix installs its own scoped plans; the fixed seed here pins the
# probabilistic-trigger schedules so failures reproduce bit-for-bit.
SALIENT_FAULT_SEED=42 cargo test -q --offline --test fault_matrix

echo "CI OK"
