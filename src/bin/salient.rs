//! The `salient` command-line interface: train, evaluate, and simulate from
//! the shell.
//!
//! ```text
//! salient train    [--dataset arxiv|products|papers] [--scale F] [--model sage|gat|gin|sage-ri]
//!                  [--epochs N] [--batch N] [--hidden N] [--lr F] [--ranks N]
//!                  [--executor baseline|salient] [--save PATH]
//! salient eval     --load PATH [--dataset ...] [--scale F] [--fanout D]
//! salient simulate [--gpus N]
//! salient sample   [--dataset ...] [--scale F] [--batch N]
//! ```

use salient_repro::core::checkpoint::Checkpoint;
use salient_repro::core::{train_ddp, ExecutorKind, ModelKindConfig, RunConfig, Trainer};
use salient_repro::graph::{Dataset, DatasetConfig, DatasetStats};
use salient_repro::sampler::FastSampler;
use salient_repro::sim::{
    scaling_sweep, simulate_epoch, CostModel, EpochConfig, OptLevel,
};
use std::sync::Arc;

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn flag_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T {
    flag(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn build_dataset(args: &[String]) -> Arc<Dataset> {
    let scale: f64 = flag_or(args, "--scale", 0.15);
    let name = flag(args, "--dataset").unwrap_or_else(|| "arxiv".into());
    let mut cfg = match name.as_str() {
        "products" => DatasetConfig::products_sim(scale),
        "papers" => DatasetConfig::papers_sim(scale),
        _ => DatasetConfig::arxiv_sim(scale),
    };
    // CLI runs want trainable label densities at sim scale.
    cfg.split_fracs = (0.5, 0.1, 0.4);
    let ds = Arc::new(cfg.build());
    eprintln!(
        "dataset {}: {} nodes, {} edges, {} classes",
        ds.name,
        ds.graph.num_nodes(),
        ds.graph.num_edges(),
        ds.num_classes
    );
    ds
}

fn run_config(args: &[String]) -> RunConfig {
    let model = match flag(args, "--model").as_deref() {
        Some("gat") => ModelKindConfig::Gat,
        Some("gin") => ModelKindConfig::Gin,
        Some("sage-ri") => ModelKindConfig::SageRi,
        _ => ModelKindConfig::Sage,
    };
    let executor = match flag(args, "--executor").as_deref() {
        Some("baseline") => ExecutorKind::Baseline,
        _ => ExecutorKind::Salient,
    };
    RunConfig {
        model,
        executor,
        num_layers: 3,
        hidden: flag_or(args, "--hidden", 64),
        train_fanouts: vec![15, 10, 5],
        infer_fanouts: vec![20, 20, 20],
        batch_size: flag_or(args, "--batch", 128),
        learning_rate: flag_or(args, "--lr", 5e-3),
        epochs: flag_or(args, "--epochs", 10),
        num_workers: flag_or(args, "--workers", 2),
        slots: 4,
        seed: flag_or(args, "--seed", 0),
        prep_retry_budget: flag_or(args, "--prep-retries", 1),
        prep_respawn_budget: flag_or(args, "--prep-respawns", 1),
        comm_timeout_ms: flag_or(args, "--comm-timeout-ms", 5_000),
    }
}

fn cmd_train(args: &[String]) {
    let ds = build_dataset(args);
    let cfg = run_config(args);
    let ranks: usize = flag_or(args, "--ranks", 1);
    if ranks > 1 {
        eprintln!("training with {ranks} data-parallel ranks...");
        let result = match train_ddp(&ds, &cfg, ranks) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("distributed run failed: {e}");
                std::process::exit(1);
            }
        };
        for (e, l) in result.epoch_losses.iter().enumerate() {
            println!("epoch {e}: loss {l:.4}");
        }
        println!("wall: {:.2}s", result.wall_s);
        if let Some(path) = flag(args, "--save") {
            Checkpoint::from_model(result.model.as_ref()).save(&path).expect("save failed");
            println!("saved checkpoint to {path}");
        }
        return;
    }
    let mut trainer = Trainer::new(Arc::clone(&ds), cfg);
    for stats in trainer.fit() {
        println!(
            "epoch {}: loss {:.4}  ({:.2}s; prep {:.2}s xfer {:.2}s train {:.2}s)",
            stats.epoch,
            stats.mean_loss,
            stats.timings.total_s,
            stats.timings.prep_s,
            stats.timings.transfer_s,
            stats.timings.train_s
        );
    }
    let (val, _) = trainer.evaluate_sampled(&ds.splits.val.clone(), &[20, 20, 20]);
    let (test, _) = trainer.evaluate_sampled(&ds.splits.test.clone(), &[20, 20, 20]);
    println!("val accuracy {val:.4}, test accuracy {test:.4}");
    if let Some(path) = flag(args, "--save") {
        Checkpoint::from_model(trainer.model()).save(&path).expect("save failed");
        println!("saved checkpoint to {path}");
    }
}

fn cmd_eval(args: &[String]) {
    let path = flag(args, "--load").expect("--load PATH is required");
    let ds = build_dataset(args);
    let cfg = run_config(args);
    let mut trainer = Trainer::new(Arc::clone(&ds), cfg);
    let ckpt = Checkpoint::load(&path).expect("cannot read checkpoint");
    ckpt.apply_to_model(trainer.model_mut()).expect("checkpoint mismatch");
    let d: usize = flag_or(args, "--fanout", 20);
    let (acc, _) = trainer.evaluate_sampled(&ds.splits.test.clone(), &[d, d, d]);
    println!("test accuracy at fanout ({d},{d},{d}): {acc:.4}");
}

fn cmd_simulate(args: &[String]) {
    let model = CostModel::paper_hardware();
    println!("single-GPU ladder (virtual s/epoch):");
    for stats in DatasetStats::all() {
        print!("  {:<9}", stats.name);
        for level in OptLevel::ladder() {
            let r = simulate_epoch(&EpochConfig::paper_default(stats.clone(), level), &model);
            print!(" {:>7.2}", r.epoch_s);
        }
        println!();
    }
    let gpus: usize = flag_or(args, "--gpus", 16);
    println!("\nscaling to {gpus} GPUs:");
    for stats in DatasetStats::all() {
        let base = EpochConfig::paper_default(stats.clone(), OptLevel::Pipelined);
        let sweep = scaling_sweep(&base, &[1, gpus], &model);
        println!(
            "  {:<9} {:>6.2}s -> {:>5.2}s  ({:.2}x)",
            stats.name,
            sweep[0].1,
            sweep[1].1,
            sweep[0].1 / sweep[1].1
        );
    }
}

fn cmd_sample(args: &[String]) {
    let ds = build_dataset(args);
    let batch: usize = flag_or(args, "--batch", 256);
    let mut sampler = FastSampler::new(flag_or(args, "--seed", 0));
    let seeds: Vec<u32> = ds.splits.train.iter().copied().take(batch).collect();
    let mfg = sampler.sample(&ds.graph, &seeds, &[15, 10, 5]);
    println!("batch of {}: {} nodes, {} edges", seeds.len(), mfg.num_nodes(), mfg.num_edges());
    for (i, l) in mfg.layers.iter().enumerate() {
        println!("  layer {i}: {} -> {} rows, {} edges", l.n_src, l.n_dst, l.num_edges());
    }
    println!(
        "  transfer payload: {} KB features (f16) + {} KB structure",
        mfg.num_nodes() * ds.features.dim() * 2 / 1024,
        mfg.structure_bytes() / 1024
    );
}

fn main() {
    // Deterministic fault injection for resilience drills: set
    // SALIENT_FAULT_SEED / SALIENT_FAULT_SPEC to arm named injection
    // points (no-ops otherwise).
    match salient_repro::fault::install_from_env() {
        Ok(true) => eprintln!("fault injection armed from SALIENT_FAULT_SPEC"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("bad SALIENT_FAULT_SPEC: {e}");
            std::process::exit(2);
        }
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args),
        Some("eval") => cmd_eval(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("sample") => cmd_sample(&args),
        _ => {
            eprintln!("usage: salient <train|eval|simulate|sample> [flags]");
            eprintln!("see module docs (src/bin/salient.rs) for flags");
            std::process::exit(2);
        }
    }
}
