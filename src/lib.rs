//! Workspace root crate for the SALIENT reproduction.
//!
//! This crate only re-exports the member crates so that the repository's
//! `examples/` and `tests/` directories can exercise the full public API.
pub use salient_batchprep as batchprep;
pub use salient_bench as bench;
pub use salient_core as core;
pub use salient_ddp as ddp;
pub use salient_fault as fault;
pub use salient_graph as graph;
pub use salient_nn as nn;
pub use salient_pipeline as pipeline;
pub use salient_sampler as sampler;
pub use salient_serve as serve;
pub use salient_sim as sim;
pub use salient_tensor as tensor;
pub use salient_trace as trace;
