//! Integration tests for the alternative sampling families of §2.2:
//! layer-wise (FastGCN/LADIES-style) and subgraph (GraphSAINT-style)
//! sampling, exercised through the full model stack.

use salient_repro::graph::DatasetConfig;
use salient_repro::nn::{build_model, Mode, ModelKind};
use salient_repro::sampler::{FastSampler, LayerwiseSampler, SaintSampler};
use salient_repro::tensor::Tape;

#[test]
fn models_can_train_on_saint_subgraphs() {
    let ds = DatasetConfig::tiny(82).build();
    let roots = &ds.splits.train[..8];
    let mfg = SaintSampler::new(1, 4).sample(&ds.graph, roots, 2);
    let mut model = build_model(ModelKind::Sage, ds.features.dim(), 16, ds.num_classes, 2, 0);
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
    let tape = Tape::new();
    let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
    let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
    // Subgraph training predicts for *all* subgraph nodes; the loss is
    // restricted to the labeled roots (first 8 rows).
    assert_eq!(out.shape().rows(), mfg.num_nodes());
    let targets: Vec<usize> = mfg.node_ids[..8]
        .iter()
        .map(|&v| ds.labels[v as usize] as usize)
        .collect();
    let loss = out.narrow_rows(8).nll_loss(&targets);
    let grads = tape.backward(&loss);
    grads.apply_to(model.params_mut());
    assert!(model.params().iter().any(|p| p.grad().norm() > 0.0));
}

#[test]
fn models_can_train_on_layerwise_mfgs() {
    let ds = DatasetConfig::tiny(83).build();
    let batch = &ds.splits.train[..12];
    let mfg = LayerwiseSampler::new(3).sample(&ds.graph, batch, &[48, 24]);
    mfg.validate().unwrap();
    let mut model = build_model(ModelKind::Sage, ds.features.dim(), 16, ds.num_classes, 2, 0);
    let mut rng = salient_tensor::rng::StdRng::seed_from_u64(0);
    let tape = Tape::new();
    let x = tape.constant(ds.features.gather_f32(&mfg.node_ids));
    let out = model.forward(&tape, x, &mfg, Mode::Train, &mut rng);
    assert_eq!(out.shape().rows(), 12);
    let targets: Vec<usize> = mfg.node_ids[..12]
        .iter()
        .map(|&v| ds.labels[v as usize] as usize)
        .collect();
    let loss = out.nll_loss(&targets);
    assert!(loss.value().item().is_finite());
    let grads = tape.backward(&loss);
    grads.apply_to(model.params_mut());
}

#[test]
fn sampling_families_have_the_expected_mfg_shapes() {
    // Node-wise: width grows multiplicatively per hop.
    // Layer-wise: width grows by at most the budget per hop.
    // Subgraph: width constant across hops.
    let ds = DatasetConfig::products_sim(0.05).build();
    let batch = &ds.splits.train[..24];
    let nodewise = FastSampler::new(0).sample(&ds.graph, batch, &[10, 10]);
    let layerwise = LayerwiseSampler::new(0).sample(&ds.graph, batch, &[50, 50]);
    let subgraph = SaintSampler::new(0, 6).sample(&ds.graph, batch, 2);

    assert!(nodewise.layers[0].n_src > nodewise.layers[1].n_src);
    assert!(layerwise.num_nodes() <= 24 + 100);
    assert_eq!(subgraph.layers[0].n_src, subgraph.layers[1].n_src);
    assert!(nodewise.num_nodes() > layerwise.num_nodes());
}
