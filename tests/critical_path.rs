//! Cross-plane validation of the what-if projector: replaying recorded
//! causal chains under the pipeline's structural constraints (bounded
//! transfer queue, prefetch depth, worker lanes) must agree with the sim
//! plane's independent discrete-event schedule on the same shape constants.
//! This is the CI gate for the profiler's central promise — a what-if
//! projection is trustworthy because an unrelated model of the same
//! pipeline predicts the same makespan, within 10%.

use salient_repro::graph::DatasetStats;
use salient_repro::sim::{
    pipelined_shape_ns, simulate_epoch, CostModel, EpochConfig, OptLevel, PipelinedShapeNs,
};
use salient_repro::trace::Replay;

/// The 3-stage uniform replay on the sim plane's shape constants.
fn replay_for(sh: &PipelinedShapeNs) -> Replay {
    Replay::uniform(
        &[("prep", sh.workers), ("transfer", 1), ("train", 1)],
        &[sh.prep_ns, sh.transfer_ns, sh.train_ns],
        sh.batches,
        sh.queue_cap,
        sh.prefetch,
    )
}

fn pct_diff(a: f64, b: f64) -> f64 {
    100.0 * (a - b).abs() / b
}

#[test]
fn replay_makespan_matches_the_sim_plane_within_ten_percent() {
    let model = CostModel::paper_hardware();
    for stats in [DatasetStats::arxiv(), DatasetStats::products()] {
        let name = stats.name;
        let cfg = EpochConfig::paper_default(stats, OptLevel::Pipelined);
        let sh = pipelined_shape_ns(&cfg, &model);
        let replay_ns = replay_for(&sh).makespan_ns() as f64;
        let sim_ns = simulate_epoch(&cfg, &model).epoch_s * 1e9;
        let diff = pct_diff(replay_ns, sim_ns);
        assert!(
            diff <= 10.0,
            "{name}: replay {replay_ns:.3e} ns vs sim {sim_ns:.3e} ns ({diff:.1}% apart)"
        );
    }
}

#[test]
fn what_if_projection_matches_rerunning_the_sim_with_the_faster_stage() {
    let model = CostModel::paper_hardware();
    let cfg = EpochConfig::paper_default(DatasetStats::arxiv(), OptLevel::Pipelined);
    let sh = pipelined_shape_ns(&cfg, &model);

    // Double the GPU's throughput in the sim's cost model; the resulting
    // per-batch train-duration ratio is the exact speed-up factor to feed
    // the replay projector (per-batch overheads keep it below 2x).
    let mut fast = model.clone();
    fast.gpu_flops *= 2.0;
    let sh_fast = pipelined_shape_ns(&cfg, &fast);
    assert!(sh_fast.train_ns < sh.train_ns, "faster GPU must shorten train");
    let factor = sh.train_ns as f64 / sh_fast.train_ns as f64;

    let w = replay_for(&sh).what_if(2, factor);
    assert!(w.speedup >= 1.0, "speeding a stage can never slow the run");
    let sim_fast_ns = simulate_epoch(&cfg, &fast).epoch_s * 1e9;
    let diff = pct_diff(w.projected_ns as f64, sim_fast_ns);
    assert!(
        diff <= 10.0,
        "projected {:.3e} ns vs faster-GPU sim {sim_fast_ns:.3e} ns ({diff:.1}% apart)",
        w.projected_ns as f64
    );

    // And the baseline leg of the same what-if still matches the unmodified
    // sim, so the projection's delta is anchored at both ends.
    let sim_ns = simulate_epoch(&cfg, &model).epoch_s * 1e9;
    assert!(pct_diff(w.baseline_ns as f64, sim_ns) <= 10.0);
}
