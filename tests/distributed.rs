//! Integration tests for distributed data-parallel training.

use salient_repro::core::{train_ddp, RunConfig};
use salient_repro::ddp::Communicator;
use salient_repro::graph::DatasetConfig;
use std::sync::Arc;

fn dataset() -> Arc<salient_repro::graph::Dataset> {
    let mut cfg = DatasetConfig::tiny(50);
    cfg.split_fracs = (0.6, 0.2, 0.2);
    Arc::new(cfg.build())
}

#[test]
fn ddp_trains_with_various_rank_counts() {
    let ds = dataset();
    let run = RunConfig {
        epochs: 3,
        batch_size: 32,
        learning_rate: 5e-3,
        ..RunConfig::test_tiny()
    };
    for ranks in [1usize, 2, 4] {
        let result = train_ddp(&ds, &run, ranks).unwrap();
        assert_eq!(result.epoch_losses.len(), 3);
        assert!(
            result.epoch_losses.iter().all(|l| l.is_finite()),
            "{ranks} ranks: losses {:?}",
            result.epoch_losses
        );
        assert!(
            result.epoch_losses.last().unwrap() < result.epoch_losses.first().unwrap(),
            "{ranks} ranks: loss should fall: {:?}",
            result.epoch_losses
        );
    }
}

#[test]
fn effective_batch_scales_with_ranks() {
    // With R ranks each epoch has ceil(train / (batch*R)) optimizer steps;
    // verify indirectly: more ranks, fewer steps, so with a fixed epoch
    // budget the loss decreases less per epoch but stays on trend.
    let ds = dataset();
    let run = RunConfig {
        epochs: 1,
        batch_size: 16,
        ..RunConfig::test_tiny()
    };
    let single = train_ddp(&ds, &run, 1).unwrap();
    let quad = train_ddp(&ds, &run, 4).unwrap();
    assert!(single.epoch_losses[0].is_finite() && quad.epoch_losses[0].is_finite());
}

#[test]
fn allreduce_sum_is_associative_for_odd_sizes() {
    // Ring all-reduce with buffer lengths not divisible by world size.
    for world in [2usize, 3, 5] {
        let comms = Communicator::ring(world);
        let outputs: Vec<Vec<f32>> = std::thread::scope(|s| {
            comms
                .into_iter()
                .enumerate()
                .map(|(r, comm)| {
                    s.spawn(move || {
                        let mut buf: Vec<f32> = (0..7).map(|i| (r * 7 + i) as f32).collect();
                        comm.all_reduce_sum(&mut buf);
                        buf
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let expect: Vec<f32> = (0..7)
            .map(|i| (0..world).map(|r| (r * 7 + i) as f32).sum())
            .collect();
        for (r, out) in outputs.iter().enumerate() {
            assert_eq!(out, &expect, "world {world}, rank {r}");
        }
    }
}
