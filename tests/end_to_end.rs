//! End-to-end integration: dataset → sampler → batch prep → model →
//! optimizer, through the public API, for both executors and several
//! architectures.

use salient_repro::core::{ExecutorKind, ModelKindConfig, RunConfig, Trainer};
use salient_repro::graph::DatasetConfig;
use std::sync::Arc;

fn dense_tiny(seed: u64) -> Arc<salient_repro::graph::Dataset> {
    let mut cfg = DatasetConfig::tiny(seed);
    cfg.split_fracs = (0.6, 0.2, 0.2);
    Arc::new(cfg.build())
}

#[test]
fn salient_executor_trains_every_architecture() {
    let ds = dense_tiny(1);
    for model in [
        ModelKindConfig::Sage,
        ModelKindConfig::Gat,
        ModelKindConfig::Gin,
        ModelKindConfig::SageRi,
    ] {
        let run = RunConfig {
            model,
            epochs: 5,
            batch_size: 64,
            learning_rate: 5e-3,
            ..RunConfig::test_tiny()
        };
        let mut trainer = Trainer::new(Arc::clone(&ds), run);
        let history = trainer.fit();
        let first = history.first().unwrap().mean_loss;
        let last = history.last().unwrap().mean_loss;
        assert!(
            last < first,
            "{model:?}: loss must decrease ({first:.3} -> {last:.3})"
        );
        assert!(last.is_finite(), "{model:?}: loss must stay finite");
    }
}

#[test]
fn both_executors_reach_similar_accuracy() {
    let ds = dense_tiny(2);
    let mut accs = Vec::new();
    for executor in [ExecutorKind::Baseline, ExecutorKind::Salient] {
        let run = RunConfig {
            executor,
            epochs: 10,
            learning_rate: 5e-3,
            ..RunConfig::test_tiny()
        };
        let mut trainer = Trainer::new(Arc::clone(&ds), run);
        trainer.fit();
        let (acc, _) = trainer.evaluate_sampled(&ds.splits.test.clone(), &[10, 10]);
        accs.push(acc);
    }
    // The executors differ only in *how* batches are produced; both must
    // train to a working model on the planted task.
    let chance = 1.0 / ds.num_classes as f64;
    assert!(accs[0] > 3.0 * chance, "baseline acc {:.3}", accs[0]);
    assert!(accs[1] > 3.0 * chance, "salient acc {:.3}", accs[1]);
    assert!(
        (accs[0] - accs[1]).abs() < 0.25,
        "executors should land in the same accuracy regime: {accs:?}"
    );
}

#[test]
fn inference_fanout_saturates_toward_full() {
    // The paper's §5 claim, end to end: accuracy(sampled fanout d) is
    // non-decreasing-ish in d and approaches full-neighborhood accuracy.
    let ds = dense_tiny(3);
    let run = RunConfig {
        epochs: 12,
        learning_rate: 5e-3,
        ..RunConfig::test_tiny()
    };
    let mut trainer = Trainer::new(Arc::clone(&ds), run);
    trainer.fit();
    let test = ds.splits.test.clone();
    let (full, _) = trainer.evaluate_full(&test);
    let (acc2, _) = trainer.evaluate_sampled(&test, &[2, 2]);
    let (acc20, _) = trainer.evaluate_sampled(&test, &[20, 20]);
    assert!(
        acc20 + 0.05 >= acc2,
        "larger fanout should not be materially worse: {acc2:.3} vs {acc20:.3}"
    );
    assert!(
        (full - acc20).abs() < 0.1,
        "fanout 20 ≈ full neighborhood: {acc20:.3} vs {full:.3}"
    );
}

#[test]
fn epoch_timings_are_consistent() {
    let ds = dense_tiny(4);
    let mut trainer = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny());
    let stats = trainer.train_epoch();
    let t = stats.timings;
    assert!(t.total_s > 0.0);
    // Stage sums cannot exceed the wall clock by more than measurement
    // noise (they are all measured inside the same loop).
    assert!(
        t.prep_s + t.transfer_s + t.train_s <= t.total_s * 1.05 + 0.01,
        "stages {:?} exceed total {}",
        (t.prep_s, t.transfer_s, t.train_s),
        t.total_s
    );
}

#[test]
fn deterministic_training_given_seed() {
    let ds = dense_tiny(5);
    let losses = |seed: u64| {
        let run = RunConfig {
            executor: ExecutorKind::Baseline, // deterministic batch order
            epochs: 2,
            seed,
            ..RunConfig::test_tiny()
        };
        let mut trainer = Trainer::new(Arc::clone(&ds), run);
        trainer
            .fit()
            .into_iter()
            .map(|s| s.mean_loss)
            .collect::<Vec<_>>()
    };
    assert_eq!(losses(9), losses(9), "same seed, same losses");
    assert_ne!(losses(9), losses(10), "different seed, different run");
}

#[test]
fn early_stopping_halts_before_epoch_budget() {
    let ds = dense_tiny(6);
    let run = RunConfig {
        epochs: 40, // far more than needed on the tiny planted task
        learning_rate: 5e-3,
        ..RunConfig::test_tiny()
    };
    let mut trainer = Trainer::new(Arc::clone(&ds), run);
    let (history, best_val) = trainer.fit_with_early_stopping(3);
    assert!(
        history.len() < 40,
        "tiny task should converge and stop early, ran {} epochs",
        history.len()
    );
    assert!(best_val > 0.3, "best validation accuracy {best_val:.3}");
}

#[test]
fn checkpoint_restores_trainer_accuracy() {
    use salient_repro::core::checkpoint::Checkpoint;
    let ds = dense_tiny(7);
    let run = RunConfig {
        epochs: 8,
        learning_rate: 5e-3,
        ..RunConfig::test_tiny()
    };
    let mut trainer = Trainer::new(Arc::clone(&ds), run.clone());
    trainer.fit();
    let test = ds.splits.test.clone();
    let (acc_before, preds_before) = trainer.evaluate_sampled(&test, &[10, 10]);
    let ckpt = Checkpoint::from_model(trainer.model());

    // Fresh (untrained) trainer restored from the checkpoint must predict
    // identically (deterministic eval sampler + no dropout).
    let mut restored = Trainer::new(Arc::clone(&ds), run);
    ckpt.apply_to_model(restored.model_mut()).unwrap();
    let (acc_after, preds_after) = restored.evaluate_sampled(&test, &[10, 10]);
    assert_eq!(preds_before, preds_after);
    assert!((acc_before - acc_after).abs() < 1e-12);
}
