//! Fault-injection matrix: every instrumented site, exercised in both
//! batch-prep modes, asserting the pipeline's recovery invariants:
//!
//! * the epoch always terminates (no hangs, no deadlocks);
//! * every batch is accounted for — prepared, retried, or reported as a
//!   terminal `BatchResult::Failed` marker (dropped messages excepted);
//! * no pinned staging slot leaks, whatever dies;
//! * every injected fault is *observable*: the trace registry's
//!   retry / respawn / failed-batch counters and point events mirror the
//!   supervisor's own `FaultStats` exactly;
//! * DDP collectives surface typed `CommError`s instead of hanging;
//! * checkpoint saves are crash-safe and loads detect corruption.
//!
//! The fault plan is process-global, so every test here serializes on one
//! mutex; nothing else runs in this binary.

use salient_repro::batchprep::{run_epoch, BatchResult, FaultStats, PrepConfig, PrepMode, SamplerKind};
use salient_repro::core::checkpoint::{Checkpoint, CheckpointError};
use salient_repro::core::{train_ddp, DdpError, RunConfig};
use salient_repro::ddp::CommErrorKind;
use salient_repro::fault::{self, sites, FaultKind, FaultPlan, FaultSpec, Trigger};
use salient_repro::graph::{Dataset, DatasetConfig};
use salient_repro::serve::{Rejected, Request, Response, ServeConfig, ServerCore};
use salient_repro::tensor::Tensor;
use salient_repro::trace::{names, Clock, Trace};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests: the installed fault plan is process-global state.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn dataset() -> Arc<Dataset> {
    static DS: OnceLock<Arc<Dataset>> = OnceLock::new();
    Arc::clone(DS.get_or_init(|| Arc::new(DatasetConfig::tiny(11).build())))
}

fn prep_cfg(mode: PrepMode) -> PrepConfig {
    PrepConfig {
        num_workers: 2,
        fanouts: vec![5, 3],
        batch_size: 32,
        slots: 3,
        mode,
        sampler: SamplerKind::Fast,
        seed: 4,
        retry_budget: 1,
        respawn_budget: 1,
        // A fresh per-run registry on a deterministic virtual clock, so every
        // matrix scenario can cross-check its recovery path against the
        // trace's fault counters and point events.
        trace: Trace::new(Clock::virtual_with_tick(1_000)),
    }
}

/// Runs one prep epoch under `plan`, consuming every message. Returns
/// `(ready batch ids, failed (batch_id, attempts), fault stats)` and
/// asserts the no-leaked-slot invariant.
fn run_under_plan(
    plan: FaultPlan,
    cfg: &PrepConfig,
) -> (Vec<usize>, Vec<(usize, u32)>, FaultStats) {
    let ds = dataset();
    let order = ds.splits.train.clone();
    let _guard = fault::scoped(plan);
    let handle = run_epoch(&ds, &order, cfg);
    let pool = handle.pool().clone();
    let mut ready = Vec::new();
    let mut failed = Vec::new();
    for msg in handle.batches.iter() {
        match msg {
            BatchResult::Ready(b) => ready.push(b.batch_id),
            BatchResult::Failed { batch_id, attempts } => failed.push((batch_id, attempts)),
        }
    }
    let (_stats, faults) = handle.join_detailed();
    assert_eq!(
        pool.available(),
        pool.capacity(),
        "a staging slot leaked: {faults:?}"
    );
    assert_faults_observable(&cfg.trace, &faults);
    ready.sort_unstable();
    failed.sort_unstable();
    (ready, failed, faults)
}

/// Every recovery action the supervisor takes must be visible in the trace
/// registry: counters equal to `FaultStats`, plus one timeline point event
/// per occurrence (so Chrome traces show *when* each fault fired).
fn assert_faults_observable(trace: &Trace, faults: &FaultStats) {
    let snap = trace.snapshot();
    let c = |name: &str| snap.metrics.counter(name) as usize;
    assert_eq!(c(names::counters::ITEM_PANICS), faults.item_panics, "{faults:?}");
    assert_eq!(c(names::counters::RETRIES), faults.retries, "{faults:?}");
    assert_eq!(c(names::counters::FAILED_BATCHES), faults.failed_batches, "{faults:?}");
    assert_eq!(c(names::counters::WORKER_PANICS), faults.worker_panics, "{faults:?}");
    assert_eq!(c(names::counters::RESPAWNS), faults.respawns, "{faults:?}");
    assert_eq!(c(names::counters::DEGRADED) > 0, faults.degraded_inline, "{faults:?}");
    assert_eq!(snap.count(names::events::RETRY), faults.retries, "{faults:?}");
    assert_eq!(snap.count(names::events::RESPAWN), faults.respawns, "{faults:?}");
    assert_eq!(
        snap.count(names::events::FAILED_BATCH),
        faults.failed_batches,
        "{faults:?}"
    );
    assert_eq!(
        snap.count(names::events::WORKER_PANIC),
        faults.worker_panics,
        "{faults:?}"
    );
}

fn expected_batches() -> usize {
    dataset().splits.train.len().div_ceil(32)
}

/// A rule that fires on every attempt of one occurrence (no budget), unlike
/// `panic_at`, whose single-firing budget lets the first retry through.
fn always_panic_at(site: &str, occ: u64) -> FaultSpec {
    FaultSpec {
        site: site.to_string(),
        kind: FaultKind::Panic,
        trigger: Trigger::Once(occ),
        budget: None,
    }
}

const MODES: [PrepMode; 2] = [PrepMode::SharedMemory, PrepMode::Multiprocessing];

#[test]
fn item_panic_is_retried_and_epoch_completes() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        for site in [sites::PREP_SAMPLE, sites::PREP_SLICE] {
            // Budget 1: the panic fires once, the retry succeeds.
            let plan = FaultPlan::new(1).panic_at(site, 2);
            let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
            assert_eq!(ready, (0..n).collect::<Vec<_>>(), "{mode:?}/{site}");
            assert!(failed.is_empty(), "{mode:?}/{site}: {failed:?}");
            assert_eq!(faults.item_panics, 1, "{mode:?}/{site}");
            assert_eq!(faults.retries, 1, "{mode:?}/{site}");
            assert_eq!(faults.failed_batches, 0, "{mode:?}/{site}");
        }
    }
}

#[test]
fn exhausted_retry_budget_yields_exactly_one_failed_marker() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        for site in [sites::PREP_SAMPLE, sites::PREP_SLICE] {
            // Unbudgeted rule: batch 1 panics on the first attempt AND on
            // its retry, exhausting retry_budget = 1.
            let plan = FaultPlan::new(2).with_spec(always_panic_at(site, 1));
            let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
            let mut want: Vec<usize> = (0..n).collect();
            want.retain(|&b| b != 1);
            assert_eq!(ready, want, "{mode:?}/{site}");
            assert_eq!(failed, vec![(1, 2)], "{mode:?}/{site}: 1 + 1 retry = 2 attempts");
            assert_eq!(faults.item_panics, 2, "{mode:?}/{site}");
            assert_eq!(faults.failed_batches, 1, "{mode:?}/{site}");
        }
    }
}

#[test]
fn fault_events_carry_the_failing_batch_id() {
    let _s = serial();
    let cfg = prep_cfg(PrepMode::SharedMemory);
    // Batch 1 panics on every attempt: one retry event, then one terminal
    // failed-batch event — both tagged with batch id 1 on the timeline.
    let plan = FaultPlan::new(2).with_spec(always_panic_at(sites::PREP_SAMPLE, 1));
    let (_ready, failed, _faults) = run_under_plan(plan, &cfg);
    assert_eq!(failed, vec![(1, 2)]);
    let snap = cfg.trace.snapshot();
    let tagged = |name: &str| -> Vec<u64> {
        snap.events
            .iter()
            .filter(|e| e.name == name)
            .map(|e| e.batch)
            .collect()
    };
    assert_eq!(tagged(names::events::RETRY), vec![1]);
    assert_eq!(tagged(names::events::FAILED_BATCH), vec![1]);
}

#[test]
fn dropped_send_loses_the_batch_but_not_the_slot() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        let plan = FaultPlan::new(3).drop_at(sites::PREP_SEND, 0);
        let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
        assert_eq!(ready, (1..n).collect::<Vec<_>>(), "{mode:?}");
        assert!(failed.is_empty(), "{mode:?}");
        assert!(!faults.any(), "a dropped message is silent: {faults:?}");
    }
}

#[test]
fn straggler_delay_only_slows_the_epoch() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        let plan = FaultPlan::new(4).delay_at(sites::PREP_SAMPLE, 0, Duration::from_millis(30));
        let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
        assert_eq!(ready.len(), n, "{mode:?}");
        assert!(failed.is_empty() && !faults.any(), "{mode:?}");
    }
}

#[test]
fn dead_worker_is_respawned_within_budget() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        // Worker 0 dies at spawn; the supervisor restarts it once (same id,
        // so a static partition keeps its owner).
        let plan = FaultPlan::new(5).panic_at(sites::PREP_WORKER, 0);
        let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
        assert_eq!(ready.len(), n, "{mode:?}");
        assert!(failed.is_empty(), "{mode:?}");
        assert_eq!(faults.worker_panics, 1, "{mode:?}");
        assert_eq!(faults.respawns, 1, "{mode:?}");
        assert!(!faults.degraded_inline, "{mode:?}");
    }
}

#[test]
fn worker_collapse_degrades_to_inline_preparation() {
    let _s = serial();
    let n = expected_batches();
    for mode in MODES {
        // Every worker (and every respawn) dies instantly; the supervisor
        // finishes the epoch inline so the consumer still sees every batch.
        let plan = FaultPlan::new(6).with_spec(FaultSpec {
            site: sites::PREP_WORKER.to_string(),
            kind: FaultKind::Panic,
            trigger: Trigger::Always,
            budget: None,
        });
        let (ready, failed, faults) = run_under_plan(plan, &prep_cfg(mode));
        assert_eq!(ready, (0..n).collect::<Vec<_>>(), "{mode:?}");
        assert!(failed.is_empty(), "{mode:?}");
        assert!(faults.degraded_inline, "{mode:?}: {faults:?}");
        assert!(faults.worker_panics >= 2, "{mode:?}: {faults:?}");
    }
}

#[test]
fn transfer_stage_panic_retires_one_batch_and_the_pipeline_survives() {
    let _s = serial();
    use salient_repro::core::Trainer;
    // Batch 2's transfer stage panics inside the pipelined executor. The
    // engine catches it, drops the item (its pinned slot returns via RAII —
    // with slots=4 and more batches than slots, a leaked slot would starve
    // the prep workers and hang this test), counts it against the graph's
    // panic budget, and the epoch completes on the surviving batches.
    let ds = dataset();
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    let run = RunConfig {
        epochs: 1,
        batch_size: 32,
        ..RunConfig::test_tiny()
    };
    let n = ds.splits.train.len().div_ceil(run.batch_size);
    assert!(n > run.slots, "must recycle slots to prove none leaked");
    let _guard = fault::scoped(FaultPlan::new(41).panic_at(sites::PIPE_TRANSFER, 2));
    let mut trainer = Trainer::with_trace(Arc::clone(&ds), run, trace.clone());
    let stats = trainer.fit();
    assert_eq!(stats.len(), 1);
    assert_eq!(stats[0].batches, n - 1, "exactly the panicked batch is lost");
    assert_eq!(stats[0].failed_batches, 1, "the loss is accounted, not silent");

    // The panic is observable on the timeline: one stage-panic counter
    // tick and one point event tagged with the failing batch id; the
    // pipeline never poisons.
    let snap = trace.snapshot();
    assert_eq!(snap.metrics.counter(names::counters::PIPE_STAGE_PANICS), 1);
    let tagged: Vec<u64> = snap
        .events
        .iter()
        .filter(|e| e.name == names::events::PIPE_STAGE_PANIC)
        .map(|e| e.batch)
        .collect();
    assert_eq!(tagged, vec![2]);
    assert_eq!(snap.count(names::events::PIPE_POISONED), 0);

    // The panicked batch never reached the compute stage.
    let trained: Vec<u64> = snap
        .spans(names::spans::STAGE_TRAIN)
        .map(|e| e.batch)
        .collect();
    assert_eq!(trained.len(), n - 1);
    assert!(!trained.contains(&2), "batch 2 must not train after its panic");
}

#[test]
fn transfer_stage_drop_fault_skips_the_batch_silently_but_accounted() {
    let _s = serial();
    use salient_repro::core::Trainer;
    // Same site, Drop kind: the transfer stage sheds the batch without a
    // panic — no stage-panic activity, but the batch is still accounted as
    // failed and the rest of the epoch is untouched.
    let ds = dataset();
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    let run = RunConfig {
        epochs: 1,
        batch_size: 32,
        ..RunConfig::test_tiny()
    };
    let n = ds.splits.train.len().div_ceil(run.batch_size);
    let _guard = fault::scoped(FaultPlan::new(42).drop_at(sites::PIPE_TRANSFER, 1));
    let mut trainer = Trainer::with_trace(Arc::clone(&ds), run, trace.clone());
    let stats = trainer.fit();
    assert_eq!(stats[0].batches, n - 1);
    assert_eq!(stats[0].failed_batches, 1);
    let snap = trace.snapshot();
    assert_eq!(snap.metrics.counter(names::counters::PIPE_STAGE_PANICS), 0);
    assert_eq!(snap.count(names::events::PIPE_POISONED), 0);
}

#[test]
fn pipeline_poison_dumps_the_flight_recorder_with_the_failing_chain() {
    let _s = serial();
    use salient_repro::core::Trainer;
    use salient_repro::trace::BlackboxConfig;
    // Every transfer attempt panics: the third exceeds the graph's panic
    // budget (2) and poisons the pipeline. A run with an attached flight
    // recorder must leave a parseable post-mortem dump on disk carrying
    // the poisoning batch's causal chain.
    let ds = dataset();
    let dir = std::env::temp_dir().join("salient_fault_matrix_blackbox");
    std::fs::remove_dir_all(&dir).ok();
    let trace = Trace::with_blackbox(
        Clock::virtual_with_tick(1_000),
        BlackboxConfig {
            capacity: 1024,
            dir: dir.to_string_lossy().into_owned(),
        },
    );
    let run = RunConfig {
        epochs: 1,
        batch_size: 32,
        ..RunConfig::test_tiny()
    };
    let _guard = fault::scoped(FaultPlan::new(43).with_spec(FaultSpec {
        site: sites::PIPE_TRANSFER.to_string(),
        kind: FaultKind::Panic,
        trigger: Trigger::Always,
        budget: None,
    }));
    let mut trainer = Trainer::with_trace(Arc::clone(&ds), run, trace.clone());
    let _stats = trainer.fit();
    // The attached-blackbox trainer also installs a global fire observer;
    // detach it so later tests in this serialized binary are unaffected.
    fault::set_fire_observer(None);

    let snap = trace.snapshot();
    assert!(
        snap.count(names::events::PIPE_POISONED) >= 1,
        "an over-budget panic storm must poison the pipeline"
    );
    assert!(
        snap.metrics.counter(names::counters::BLACKBOX_DUMPS) >= 1,
        "poisoning must dump the flight recorder"
    );
    let bb = trace.blackbox().expect("recorder attached at construction");
    assert!(bb.last_dump().is_some());

    // Find the poison dump (earlier fire-observer dumps share the dir) and
    // check it post-mortem: valid JSON, poison reason, the failing batch's
    // chain reconstructed from the rings.
    use salient_repro::trace::json::parse;
    let mut poison_dump = None;
    for entry in std::fs::read_dir(&dir).expect("dump dir exists") {
        let text = std::fs::read_to_string(entry.unwrap().path()).unwrap();
        let doc = parse(&text).expect("every dump must be valid JSON");
        let meta = doc.get("blackbox").expect("dump carries trigger metadata");
        if meta.get("reason").and_then(|r| r.as_str())
            == Some(names::events::PIPE_POISONED)
        {
            poison_dump = Some(doc);
        }
    }
    let doc = poison_dump.expect("one dump must record the poison trigger");
    let meta = doc.get("blackbox").unwrap();
    // Budget 2: the third panicking *arrival* poisons. Prep workers race,
    // so that arrival's batch id varies — but it is always a real batch of
    // the epoch, and the dump must carry its chain.
    let poisoned_batch = meta
        .get("batch")
        .unwrap()
        .as_num()
        .expect("dump records the poisoning batch");
    assert!(
        poisoned_batch >= 0.0 && poisoned_batch < expected_batches() as f64,
        "poisoning batch {poisoned_batch} out of range"
    );
    let chain = doc.get("chain").unwrap().as_arr().unwrap();
    assert!(
        !chain.is_empty(),
        "the dump must carry the failing batch's causal chain"
    );
    for edge in chain {
        assert!(edge.get("kind").unwrap().as_str().is_some());
        assert!(edge.get("start_ns").unwrap().as_num().is_some());
    }
    assert!(doc.get("trace").unwrap().get("traceEvents").is_some());
    std::fs::remove_dir_all(&dir).ok();
}

fn ddp_cfg() -> RunConfig {
    RunConfig {
        epochs: 1,
        batch_size: 32,
        comm_timeout_ms: 250,
        ..RunConfig::test_tiny()
    }
}

#[test]
fn ddp_rank_death_is_reported_not_hung() {
    let _s = serial();
    let ds = dataset();
    let _guard = fault::scoped(FaultPlan::new(7).panic_at(sites::DDP_RANK, 1));
    match train_ddp(&ds, &ddp_cfg(), 2) {
        Ok(_) => panic!("a dead rank must fail the run"),
        Err(DdpError::RankPanicked { rank }) => assert_eq!(rank, 1),
        Err(other) => panic!("expected RankPanicked, got {other}"),
    }
}

#[test]
fn ddp_dropped_messages_surface_typed_timeout() {
    let _s = serial();
    let ds = dataset();
    // Rank 0's ring sends vanish (sticky): its neighbor must time out with
    // a typed error instead of blocking forever.
    let _guard = fault::scoped(FaultPlan::new(8).drop_at(sites::DDP_SEND, 0));
    match train_ddp(&ds, &ddp_cfg(), 2) {
        Ok(_) => panic!("a dropped link must fail the run"),
        Err(DdpError::Comm(e)) => assert!(
            matches!(e.kind, CommErrorKind::Timeout(_) | CommErrorKind::Disconnected),
            "unexpected kind: {e}"
        ),
        Err(other) => panic!("expected Comm, got {other}"),
    }
}

#[test]
fn checkpoint_crash_during_save_preserves_previous_file() {
    let _s = serial();
    let dir = std::env::temp_dir().join("salient_fault_matrix_ckpt");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ckpt");
    let mut old = Checkpoint::new();
    old.insert("w", Tensor::from_vec(vec![1.0, 2.0], [2]));
    old.save(&path).unwrap();

    let mut newer = Checkpoint::new();
    newer.insert("w", Tensor::from_vec(vec![9.0, 9.0], [2]));
    {
        let _guard = fault::scoped(FaultPlan::new(9).panic_at(sites::CKPT_WRITE, 0));
        let crashed = std::panic::catch_unwind(|| newer.save(&path)).is_err();
        assert!(crashed, "the injected panic must abort the save");
    }
    // The crash hit the temporary file; the published checkpoint is intact.
    let back = Checkpoint::load(&path).unwrap();
    assert_eq!(back, old);
    // And a clean save afterwards replaces it atomically.
    newer.save(&path).unwrap();
    assert_eq!(Checkpoint::load(&path).unwrap(), newer);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_truncation_and_corruption_are_typed_errors() {
    let _s = serial();
    let mut ckpt = Checkpoint::new();
    ckpt.insert("w", Tensor::from_vec((0..64).map(|i| i as f32).collect(), [64]));
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();

    // Truncation at any point is detected.
    for cut in [buf.len() - 1, buf.len() - 9, buf.len() / 2] {
        let err = Checkpoint::read_from(&mut &buf[..cut]).expect_err("truncated");
        assert!(
            matches!(err, CheckpointError::Io(_) | CheckpointError::Corrupt(_)),
            "cut {cut}: {err}"
        );
    }
    // A silent bit flip in the payload trips the trailing checksum.
    let mut flipped = buf.clone();
    let victim = flipped.len() - 16;
    flipped[victim] ^= 0x40;
    let err = Checkpoint::read_from(&mut flipped.as_slice()).expect_err("corrupt");
    assert!(
        matches!(
            err,
            CheckpointError::ChecksumMismatch { .. } | CheckpointError::Corrupt(_)
        ),
        "{err}"
    );
}

#[test]
fn same_seed_fault_plans_inject_identical_schedules() {
    let _s = serial();
    // The determinism property the whole layer rests on: a plan's decisions
    // are a pure function of (seed, site, occurrence), including plans that
    // came from the SALIENT_FAULT_SPEC grammar.
    let spec = "prep.sample=panic%0.2; ddp.send=drop%0.15; prep.slice=delay:5ms%0.1";
    for seed in [0u64, 17, 0xFEED] {
        let a = FaultPlan::parse(seed, spec).unwrap();
        let b = FaultPlan::parse(seed, spec).unwrap();
        for site in [sites::PREP_SAMPLE, sites::DDP_SEND, sites::PREP_SLICE] {
            for occ in 0..512 {
                assert_eq!(
                    a.decide(site, occ),
                    b.decide(site, occ),
                    "seed {seed} site {site} occ {occ}"
                );
            }
        }
    }
}

#[test]
fn disabled_injection_points_are_inert() {
    let _s = serial();
    // No plan installed: every instrumented path must behave exactly as the
    // uninstrumented pipeline — full epoch, zero fault activity.
    assert!(!fault::enabled());
    let n = expected_batches();
    for mode in MODES {
        let ds = dataset();
        let handle = run_epoch(&ds, &ds.splits.train.clone(), &prep_cfg(mode));
        let pool = handle.pool().clone();
        let ready = handle
            .batches
            .iter()
            .filter_map(BatchResult::ready)
            .count();
        let (stats, faults) = handle.join_detailed();
        assert_eq!(ready, n, "{mode:?}");
        assert_eq!(stats.batches, n, "{mode:?}");
        assert!(!faults.any(), "{mode:?}: {faults:?}");
        assert_eq!(pool.available(), pool.capacity(), "{mode:?}");
    }
}

// ---------------------------------------------------------------------------
// Serving-layer scenarios: the same fault grammar drives the online
// inference front-end. Invariants mirror the prep matrix: no hangs, no
// silent drops (every refusal and failure is typed), no leaked staging
// slots, and every recovery action observable in the trace registry.
// ---------------------------------------------------------------------------

/// A serving core over a manual virtual clock (tests advance time only
/// through injected delays, so pressure is a pure function of the script).
fn serve_core(seed: u64) -> ServerCore {
    use salient_repro::core::Trainer;
    let ds = dataset();
    let model = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny()).into_model();
    let cfg = ServeConfig {
        max_batch: 4,
        queue_capacity: 8,
        fanout_ladder: vec![vec![5, 5], vec![2, 2]],
        pressure_occupancy: 0.5,
        degrade_after: 2,
        restore_after: 3,
        breaker_open_after: 3,
        breaker_cooldown_ns: 1_000_000,
        breaker_probes: 2,
        seed,
        ..ServeConfig::default()
    };
    ServerCore::new(model, ds, cfg, Trace::new(Clock::virtual_manual()))
}

fn serve_pool_intact(core: &ServerCore) {
    let (avail, cap) = core.pool_available();
    assert_eq!(avail, cap, "a serving staging slot leaked");
}

const SERVE_BUDGET: u64 = 1_000_000_000; // generous: never expires here

fn serve_submit(core: &mut ServerCore, id: u64) -> Result<(), Rejected> {
    let deadline = core.now_ns() + SERVE_BUDGET;
    core.submit(Request { id, node: (id % 64) as u32, deadline_ns: deadline })
}

#[test]
fn serving_queue_fault_sheds_typed_overload_and_serving_continues() {
    let _s = serial();
    let mut core = serve_core(31);
    // Request id 1's admission hits a forced queue fault: shed as typed
    // Overload; neighbors are untouched.
    let _guard = fault::scoped(FaultPlan::new(31).drop_at(sites::SERVE_QUEUE, 1));
    assert!(serve_submit(&mut core, 0).is_ok());
    assert_eq!(serve_submit(&mut core, 1), Err(Rejected::Overload));
    assert!(serve_submit(&mut core, 2).is_ok());
    let out = core.step();
    assert_eq!(out.responses.len(), 2);
    assert!(out.responses.iter().all(|(_, r)| r.is_done()));
    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_ADMITTED), 2);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_SHED_OVERLOAD), 1);
    serve_pool_intact(&core);
}

#[test]
fn serving_breaker_reopens_on_probe_failure_then_closes_when_healed() {
    let _s = serial();
    let mut core = serve_core(32);
    let vc = Arc::clone(core.clock().as_virtual().unwrap());
    // Budget 4: three failures trip the breaker, the half-open probe fails
    // once more (re-opening it), then the pipeline heals for good.
    let _guard = fault::scoped(FaultPlan::new(32).with_spec(FaultSpec {
        site: sites::SERVE_GEMM.to_string(),
        kind: FaultKind::Panic,
        trigger: Trigger::Always,
        budget: Some(4),
    }));
    for id in 0..3 {
        assert!(serve_submit(&mut core, id).is_ok());
        let out = core.step();
        assert_eq!(out.responses, vec![(id, Response::Failed)]);
        serve_pool_intact(&core);
    }
    // Open: shed instantly.
    assert_eq!(serve_submit(&mut core, 3), Err(Rejected::Overload));
    // First probe after cooldown still crashes → re-open.
    vc.advance(1_000_000);
    assert!(serve_submit(&mut core, 4).is_ok());
    assert_eq!(core.step().responses, vec![(4, Response::Failed)]);
    assert_eq!(serve_submit(&mut core, 5), Err(Rejected::Overload));
    // Healed: two probes close the breaker; full batches flow again.
    vc.advance(1_000_000);
    for id in [6, 7] {
        assert!(serve_submit(&mut core, id).is_ok());
        let out = core.step();
        assert!(out.responses[0].1.is_done(), "probe must succeed: {out:?}");
    }
    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_BREAKER_OPENS), 2);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_OPEN), 2);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_HALF_OPEN), 2);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_CLOSE), 1);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_SHED_BREAKER), 2);
    serve_pool_intact(&core);
}

#[test]
fn serving_degrades_under_sustained_pressure_and_restores_with_hysteresis() {
    let _s = serial();
    let mut core = serve_core(33);
    // Every micro-batch costs 20 µs of injected GEMM delay; the script
    // refills the queue to capacity before each step, so every batch forms
    // under pressure until the load stops.
    let _guard = fault::scoped(FaultPlan::new(33).with_spec(FaultSpec {
        site: sites::SERVE_GEMM.to_string(),
        kind: FaultKind::Delay(Duration::from_micros(20)),
        trigger: Trigger::Always,
        budget: None,
    }));
    let mut next_id = 0u64;
    let mut degraded_done = 0usize;
    for _ in 0..3 {
        while core.pending() < 8 {
            serve_submit(&mut core, next_id).unwrap();
            next_id += 1;
        }
        let out = core.step();
        degraded_done += out
            .responses
            .iter()
            .filter(|(_, r)| matches!(r, Response::Done { fanout_level, .. } if *fanout_level > 0))
            .count();
    }
    assert_eq!(core.fanout_level(), 1, "two pressured batches must degrade");
    // Calm traffic: one request per batch; three calm batches restore.
    for _ in 0..4 {
        while core.pending() > 0 {
            core.step();
        }
        serve_submit(&mut core, next_id).unwrap();
        next_id += 1;
        let out = core.step();
        degraded_done += out
            .responses
            .iter()
            .filter(|(_, r)| matches!(r, Response::Done { fanout_level, .. } if *fanout_level > 0))
            .count();
    }
    assert_eq!(core.fanout_level(), 0, "calm must restore full fidelity");
    assert!(degraded_done > 0, "some answers must have been served degraded");
    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_DEGRADES), 1);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_RESTORES), 1);
    assert_eq!(snap.count(names::events::SERVE_DEGRADE), 1);
    assert_eq!(snap.count(names::events::SERVE_RESTORE), 1);
    serve_pool_intact(&core);
}
