//! Mixed-precision integration tier: the f16 feature-storage path end to
//! end — half-input GEMM accuracy against the documented bound, byte-traffic
//! halving through the `transfer.bytes` trace counter, and training parity
//! between f16 and f32 feature stores.
//!
//! The documented bound (see `DESIGN.md`, precision policy): with both
//! operands RTNE-quantized to binary16 and all accumulation in fp32,
//! `|C_half − C_fp32| ≤ 2.5 · 2⁻¹¹ · (|A|·|B|)` elementwise.

use salient_repro::core::{ExecutorKind, RunConfig, Trainer};
use salient_repro::graph::DatasetConfig;
use salient_repro::tensor::rng::{Rng, StdRng};
use salient_repro::tensor::{gemm, gemm_f16, quantize, Dtype, Tensor};
use salient_repro::trace::{names, Clock, Trace};
use std::sync::Arc;

const HALF_GEMM_REL_BOUND: f32 = 2.5 * (1.0 / 2048.0);

fn rand_tensor(r: usize, c: usize, rng: &mut StdRng) -> Tensor {
    Tensor::from_vec(
        (0..r * c).map(|_| rng.random_range(-1.0f32..1.0)).collect(),
        [r, c],
    )
}

/// Half GEMM sits inside the documented elementwise bound at the bench
/// feature widths (m/n shrunk so the test stays fast unoptimized; the
/// full-size check runs in release as part of the kernel bench, which
/// asserts the same bound at the exact BENCH_kernels.json shapes).
#[test]
fn half_gemm_within_documented_bound() {
    let mut rng = StdRng::seed_from_u64(42);
    for (m, k, n) in [(192, 602, 64), (128, 256, 96), (256, 100, 47)] {
        let a = rand_tensor(m, k, &mut rng);
        let b = rand_tensor(k, n, &mut rng);
        let full = gemm(&a, &b, false, false);
        let half = gemm_f16(&quantize(a.data()), m, k, &quantize(b.data()), k, n, false, false);
        let abs_a = Tensor::from_vec(a.data().iter().map(|v| v.abs()).collect(), [m, k]);
        let abs_b = Tensor::from_vec(b.data().iter().map(|v| v.abs()).collect(), [k, n]);
        let mag = gemm(&abs_a, &abs_b, false, false);
        for ((h, f), g) in half.data().iter().zip(full.data()).zip(mag.data()) {
            let err = (h - f).abs();
            let bound = HALF_GEMM_REL_BOUND * g + 1e-6;
            assert!(
                err <= bound,
                "{m}x{k}x{n}: |{h} - {f}| = {err} > {bound}"
            );
        }
    }
}

/// Runs a short SALIENT-executor training job with the feature store at
/// `dtype` and returns (transfer.bytes, final mean loss).
fn train_at(dtype: Dtype) -> (u64, f64) {
    let mut cfg = DatasetConfig::tiny(5);
    cfg.dtype = dtype;
    let dataset = Arc::new(cfg.build());
    assert_eq!(dataset.features.dtype(), dtype);
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        epochs: 2,
        num_workers: 1,
        ..RunConfig::test_tiny()
    };
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    let mut trainer = Trainer::with_trace(Arc::clone(&dataset), run, trace.clone());
    let mut last_loss = f64::NAN;
    let mut batches = 0u64;
    for stats in trainer.fit() {
        last_loss = stats.mean_loss;
        batches += stats.batches as u64;
    }
    assert!(batches > 0, "{dtype}: training must consume batches");
    assert!(last_loss.is_finite(), "{dtype}: loss must stay finite");
    let bytes = trace.snapshot().metrics.counter(names::counters::TRANSFER_BYTES);
    assert!(bytes > 0, "{dtype}: trainer must record transfer bytes");
    (bytes, last_loss)
}

/// The f16 store's transfer traffic is at most 55% of the f32 store's
/// (features halve exactly; u32 labels are the fixed overhead), measured by
/// the same `transfer.bytes` counter the epoch report prints — and training
/// works at both dtypes.
#[test]
fn f16_store_halves_transfer_bytes_and_trains() {
    let (f32_bytes, f32_loss) = train_at(Dtype::F32);
    let (f16_bytes, f16_loss) = train_at(Dtype::F16);
    let frac = f16_bytes as f64 / f32_bytes as f64;
    assert!(
        frac <= 0.55,
        "f16 transfer bytes must be <= 55% of f32: {f16_bytes} / {f32_bytes} = {frac:.3}"
    );
    // Same data, same schedule: half-precision features perturb the loss,
    // they must not derail it.
    assert!(
        (f16_loss - f32_loss).abs() < 0.25,
        "f16 loss {f16_loss} drifted from f32 loss {f32_loss}"
    );
}

/// `SALIENT_DTYPE` parsing accepts both spellings case-insensitively and
/// rejects anything else (presets call `Dtype::from_env`, so a typo'd env
/// var must not silently fall back).
#[test]
fn dtype_parse_round_trips() {
    assert_eq!(Dtype::parse("f16"), Some(Dtype::F16));
    assert_eq!(Dtype::parse("F32"), Some(Dtype::F32));
    assert_eq!(Dtype::parse("half"), Some(Dtype::F16));
    assert_eq!(Dtype::parse("float32"), Some(Dtype::F32));
    assert_eq!(Dtype::parse("f64"), None);
    assert_eq!(Dtype::F16.size_of(), 2);
    assert_eq!(Dtype::F32.size_of(), 4);
}
