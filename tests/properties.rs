//! Property-style tests over core invariants, spanning crates.
//!
//! Each test sweeps dozens of randomized cases from the workspace's seeded
//! RNG, so failures reproduce exactly by seed. (This replaced an external
//! property-testing dependency; the invariants are unchanged.)

use salient_repro::graph::{generate, CsrGraph};
use salient_repro::sampler::{FastSampler, PygSampler};
use salient_repro::tensor::rng::{Rng, StdRng};
use salient_repro::tensor::{gemm, F16, Tensor};

/// A random directed edge list over `n` nodes with up to `max_edges` edges.
fn edges(rng: &mut StdRng, n: u32, max_edges: usize) -> Vec<(u32, u32)> {
    let count = rng.random_range(0..=max_edges);
    (0..count)
        .map(|_| (rng.random_range(0..n), rng.random_range(0..n)))
        .collect()
}

fn rand_vec(rng: &mut StdRng, len: usize, lo: f32, hi: f32) -> Vec<f32> {
    (0..len).map(|_| rng.random_range(lo..hi)).collect()
}

#[test]
fn csr_round_trips_edge_lists() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let es = edges(&mut rng, 40, 200);
        let g = CsrGraph::from_edges(40, &es);
        assert_eq!(g.num_edges(), es.len());
        // Every edge is findable and degrees sum to the edge count.
        let total: usize = (0..40).map(|v| g.degree(v)).sum();
        assert_eq!(total, es.len());
        for &(u, v) in &es {
            assert!(g.neighbors(u).contains(&v));
        }
    }
}

#[test]
fn undirected_is_symmetric_and_deduped() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let es = edges(&mut rng, 30, 150);
        let u = CsrGraph::from_edges(30, &es).to_undirected();
        assert!(u.is_undirected());
        assert!(u.is_sorted());
        // No self loops and no duplicates.
        for v in 0..30u32 {
            let ns = u.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "strictly sorted = deduped");
            assert!(!ns.contains(&v), "no self loops");
        }
    }
}

#[test]
fn sampler_respects_fanout_and_locality() {
    for seed in 0..48u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let es = edges(&mut rng, 60, 400);
        let fanout = rng.random_range(1usize..8);
        let g = CsrGraph::from_edges(60, &es).to_undirected();
        let batch: Vec<u32> = (0..8).collect();
        let mfg = FastSampler::new(seed).sample(&g, &batch, &[fanout, fanout]);
        assert!(mfg.validate().is_ok());
        // Fanout bound per destination per hop.
        for layer in &mfg.layers {
            let mut counts = vec![0usize; layer.n_dst];
            for &d in &layer.edge_dst {
                counts[d as usize] += 1;
            }
            for (d, &c) in counts.iter().enumerate() {
                let global = mfg.node_ids[d];
                assert!(
                    c <= fanout.min(g.degree(global)),
                    "dst {d} sampled {c} > fanout {fanout}"
                );
            }
            // Every edge must exist in the input graph.
            for (&s, &d) in layer.edge_src.iter().zip(layer.edge_dst.iter()) {
                let (gs, gd) = (mfg.node_ids[s as usize], mfg.node_ids[d as usize]);
                assert!(g.neighbors(gd).binary_search(&gs).is_ok());
            }
        }
    }
}

#[test]
fn fast_and_pyg_samplers_agree_on_full_expansion() {
    for seed in 0..32u64 {
        // With fanout >= max degree both samplers enumerate the exact
        // 2-hop neighborhood (node sets equal as sets).
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let es = edges(&mut rng, 40, 250);
        let g = CsrGraph::from_edges(40, &es).to_undirected();
        let batch: Vec<u32> = (0..4).collect();
        let big = [1000usize, 1000];
        let mut a = FastSampler::new(seed).sample(&g, &batch, &big).node_ids;
        let mut b = PygSampler::new(seed + 1).sample(&g, &batch, &big).node_ids;
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn f16_round_trip_within_half_ulp() {
    let mut rng = StdRng::seed_from_u64(400);
    for _ in 0..2000 {
        let x = rng.random_range(-60000.0f32..60000.0);
        let h = F16::from_f32(x).to_f32();
        // Round-to-nearest: relative error ≤ 2^-11 for normals, absolute
        // error ≤ 2^-25 near zero.
        let bound = x.abs() * (2.0f32).powi(-11) + (2.0f32).powi(-24);
        assert!((h - x).abs() <= bound, "{x} -> {h}");
    }
}

#[test]
fn f16_order_preserving() {
    let mut rng = StdRng::seed_from_u64(500);
    for _ in 0..2000 {
        let a = rng.random_range(-1000.0f32..1000.0);
        let b = rng.random_range(-1000.0f32..1000.0);
        let (ha, hb) = (F16::from_f32(a), F16::from_f32(b));
        if a <= b {
            assert!(ha.to_f32() <= hb.to_f32(), "monotone quantization");
        }
    }
}

#[test]
fn gemm_matches_reference() {
    for seed in 0..50u64 {
        let mut rng = StdRng::seed_from_u64(600 + seed);
        let m = rng.random_range(1usize..6);
        let k = rng.random_range(1usize..6);
        let n = rng.random_range(1usize..6);
        let a = Tensor::from_vec(rand_vec(&mut rng, m * k, -2.0, 2.0), [m, k]);
        let b = Tensor::from_vec(rand_vec(&mut rng, k * n, -2.0, 2.0), [k, n]);
        let c = gemm(&a, &b, false, false);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|p| a.at(&[i, p]) * b.at(&[p, j])).sum();
                assert!((c.at(&[i, j]) - expect).abs() < 1e-4);
            }
        }
    }
}

#[test]
fn gemm_transposes_are_consistent() {
    for seed in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(700 + seed);
        let m = rng.random_range(1usize..5);
        let k = rng.random_range(1usize..5);
        let n = rng.random_range(1usize..5);
        let a = Tensor::from_vec(rand_vec(&mut rng, m * k, -1.0, 1.0), [m, k]);
        let b = Tensor::from_vec(rand_vec(&mut rng, k * n, -1.0, 1.0), [k, n]);
        // Materialize transposes.
        let at = {
            let mut v = vec![0.0; m * k];
            for i in 0..m {
                for p in 0..k {
                    v[p * m + i] = a.at(&[i, p]);
                }
            }
            Tensor::from_vec(v, [k, m])
        };
        let bt = {
            let mut v = vec![0.0; k * n];
            for p in 0..k {
                for j in 0..n {
                    v[j * k + p] = b.at(&[p, j]);
                }
            }
            Tensor::from_vec(v, [n, k])
        };
        let reference = gemm(&a, &b, false, false);
        for (ta, tb, lhs, rhs) in [
            (true, false, &at, &b),
            (false, true, &a, &bt),
            (true, true, &at, &bt),
        ] {
            let got = gemm(lhs, rhs, ta, tb);
            assert!(reference.max_abs_diff(&got) < 1e-4);
        }
    }
}

#[test]
fn power_law_weights_bounded() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(800 + seed);
        let n = rng.random_range(1usize..500);
        let alpha = rng.random_range(1.5f64..3.5);
        let w = generate::power_law_weights(n, alpha, 2.0, 50.0, &mut rng);
        assert_eq!(w.len(), n);
        assert!(w.iter().all(|&x| (2.0..=50.0).contains(&x)));
    }
}

#[test]
fn autograd_sum_of_products_gradient() {
    // loss = sum(x * x); dloss/dx = 2x elementwise.
    use salient_repro::tensor::Tape;
    for seed in 0..32u64 {
        let mut rng = StdRng::seed_from_u64(900 + seed);
        let len = rng.random_range(2usize..10);
        let xs = rand_vec(&mut rng, len, -3.0, 3.0);
        let tape = Tape::new();
        let x = tape.constant(Tensor::from_vec(xs.clone(), [xs.len()]));
        let loss = x.mul(&x).sum_all();
        let grads = tape.backward(&loss);
        let g = grads.wrt(&x).unwrap();
        for (gi, xi) in g.data().iter().zip(xs.iter()) {
            assert!((gi - 2.0 * xi).abs() < 1e-5);
        }
    }
}

/// Ring all-reduce equals the arithmetic mean for arbitrary world sizes and
/// buffer lengths.
#[test]
fn all_reduce_mean_equals_mean_for_many_shapes() {
    use salient_repro::ddp::Communicator;
    for world in 1..=5usize {
        for len in [1usize, 3, 8, 17] {
            let comms = Communicator::ring(world);
            let outputs: Vec<Vec<f32>> = std::thread::scope(|s| {
                comms
                    .into_iter()
                    .enumerate()
                    .map(|(r, comm)| {
                        s.spawn(move || {
                            let mut buf: Vec<f32> =
                                (0..len).map(|i| (r * 100 + i) as f32).collect();
                            comm.all_reduce_mean(&mut buf).unwrap();
                            buf
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            let expect: Vec<f32> = (0..len)
                .map(|i| {
                    (0..world).map(|r| (r * 100 + i) as f32).sum::<f32>() / world as f32
                })
                .collect();
            for out in outputs {
                assert_eq!(out, expect, "world {world} len {len}");
            }
        }
    }
}
