//! Serving-layer deadline math, degradation, and breaker behavior — all on
//! a `VirtualClock`, so every scenario is a pure function of (config, seed,
//! arrival trace, fault plan):
//!
//! * zero / past / infeasible deadlines are rejected at admission, typed;
//! * a deadline can expire at every pipeline stage, and the stage is named
//!   in the response while the remaining stages are skipped (dead work is
//!   dropped, not finished);
//! * the circuit breaker walks Closed → Open → HalfOpen → Closed
//!   deterministically under injected pipeline panics;
//! * the degradation ladder steps down under a seeded bursty trace and
//!   restores with hysteresis — and the entire response sequence replays
//!   identically;
//! * no staging slot leaks, whatever dies or expires.
//!
//! The fault plan is process-global, so tests that install one serialize
//! on a mutex.

use salient_repro::core::{RunConfig, Trainer};
use salient_repro::fault::{self, sites, FaultKind, FaultPlan, FaultSpec, Trigger};
use salient_repro::graph::{Dataset, DatasetConfig};
use salient_repro::serve::{
    loadgen, run_trace, Rejected, Request, Response, ServeConfig, ServerCore, Stage,
};
use salient_repro::trace::{names, Clock, Trace};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Serializes tests: the installed fault plan is process-global state.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn dataset() -> Arc<Dataset> {
    static DS: OnceLock<Arc<Dataset>> = OnceLock::new();
    Arc::clone(DS.get_or_init(|| Arc::new(DatasetConfig::tiny(23).build())))
}

/// A serving core on a ticking virtual clock (1 µs per read, so stages
/// take deterministic nonzero time).
fn core_with(cfg: ServeConfig) -> ServerCore {
    let ds = dataset();
    let model = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny()).into_model();
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    ServerCore::new(model, ds, cfg, trace)
}

fn small_cfg() -> ServeConfig {
    ServeConfig {
        max_batch: 4,
        queue_capacity: 8,
        fanout_ladder: vec![vec![5, 5], vec![2, 2]],
        pressure_occupancy: 0.5,
        degrade_after: 2,
        restore_after: 3,
        breaker_open_after: 3,
        breaker_cooldown_ns: 1_000_000,
        breaker_probes: 2,
        seed: 7,
        ..ServeConfig::default()
    }
}

/// Asserts the no-leaked-slot invariant.
fn assert_pool_intact(core: &ServerCore) {
    let (avail, cap) = core.pool_available();
    assert_eq!(avail, cap, "a staging slot leaked");
}

const GENEROUS: u64 = 1_000_000_000; // 1 s: never expires in these tests

#[test]
fn zero_and_past_deadlines_are_rejected_as_infeasible() {
    let _s = serial();
    let mut core = core_with(small_cfg());
    let vc = Arc::clone(core.clock().as_virtual().unwrap());
    vc.set(5_000_000);
    // Absolute zero and an already-past instant are both infeasible.
    for deadline in [0, 1_000_000] {
        assert_eq!(
            core.submit(Request { id: deadline, node: 0, deadline_ns: deadline }),
            Err(Rejected::DeadlineInfeasible)
        );
    }
    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_SHED_INFEASIBLE), 2);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_ADMITTED), 0);
    assert_eq!(core.pending(), 0);
}

#[test]
fn budget_below_the_observed_service_floor_is_infeasible() {
    let _s = serial();
    let mut core = core_with(small_cfg());
    // Establish a service-time floor: one real batch on the ticking clock.
    let now = core.now_ns();
    core.submit(Request { id: 0, node: 0, deadline_ns: now + GENEROUS })
        .unwrap();
    let out = core.step();
    assert!(out.responses[0].1.is_done());
    // A 1 ns budget is below any real batch duration.
    let now = core.now_ns();
    assert_eq!(
        core.submit(Request { id: 1, node: 1, deadline_ns: now + 1 }),
        Err(Rejected::DeadlineInfeasible)
    );
    // A generous budget is still admitted.
    let now = core.now_ns();
    assert!(core
        .submit(Request { id: 2, node: 2, deadline_ns: now + GENEROUS })
        .is_ok());
}

#[test]
fn queue_expiry_retires_before_any_work() {
    let _s = serial();
    let mut core = core_with(small_cfg());
    let vc = Arc::clone(core.clock().as_virtual().unwrap());
    let now = core.now_ns();
    core.submit(Request { id: 0, node: 0, deadline_ns: now + 50_000 })
        .unwrap();
    vc.advance(100_000); // deadline passes while queued
    let out = core.step();
    assert_eq!(out.responses, vec![(0, Response::Expired(Stage::Queue))]);
    assert!(!out.ran_batch, "expired-in-queue work must not reach the sampler");
    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_EXPIRED), 1);
    assert_eq!(snap.spans(names::spans::SERVE_SAMPLE).count(), 0);
    assert_pool_intact(&core);
}

/// Expiry at each in-pipeline stage: an injected delay stalls exactly one
/// stage past the request's budget; the response names that stage and the
/// later stages never run.
#[test]
fn deadline_expires_at_each_pipeline_stage_and_later_stages_are_skipped() {
    let _s = serial();
    let cases = [
        (sites::SERVE_SAMPLER, Stage::Sample),
        (sites::SERVE_SLICE, Stage::Slice),
        (sites::SERVE_GEMM, Stage::Gemm),
    ];
    for (site, stage) in cases {
        let mut core = core_with(small_cfg());
        let plan = FaultPlan::new(1).delay_at(site, 0, Duration::from_millis(10));
        let _guard = fault::scoped(plan);
        let now = core.now_ns();
        // 1 ms budget: survives the healthy stages (µs), not the 10 ms stall.
        core.submit(Request { id: 0, node: 0, deadline_ns: now + 1_000_000 })
            .unwrap();
        let out = core.step();
        assert_eq!(out.responses, vec![(0, Response::Expired(stage))], "{site}");
        let snap = core.trace().snapshot();
        let ran = |name: &str| snap.spans(name).count();
        match stage {
            Stage::Sample => {
                assert_eq!(ran(names::spans::SERVE_SAMPLE), 1, "{site}");
                assert_eq!(ran(names::spans::SERVE_SLICE), 0, "dead work must be dropped");
                assert_eq!(ran(names::spans::SERVE_GEMM), 0, "dead work must be dropped");
            }
            Stage::Slice => {
                assert_eq!(ran(names::spans::SERVE_SLICE), 1, "{site}");
                assert_eq!(ran(names::spans::SERVE_GEMM), 0, "dead work must be dropped");
            }
            Stage::Gemm => assert_eq!(ran(names::spans::SERVE_GEMM), 1, "{site}"),
            Stage::Queue => unreachable!(),
        }
        assert_eq!(snap.metrics.counter(names::counters::SERVE_EXPIRED), 1, "{site}");
        assert_eq!(snap.metrics.counter(names::counters::SERVE_COMPLETED), 0, "{site}");
        assert_pool_intact(&core);
    }
}

#[test]
fn breaker_walks_closed_open_half_open_closed_deterministically() {
    let _s = serial();
    let mut core = core_with(small_cfg());
    let vc = Arc::clone(core.clock().as_virtual().unwrap());
    // Exactly three sampler crashes (budget 3), then the pipeline heals.
    let plan = FaultPlan::new(2).with_spec(FaultSpec {
        site: sites::SERVE_SAMPLER.to_string(),
        kind: FaultKind::Panic,
        trigger: Trigger::Always,
        budget: Some(3),
    });
    let _guard = fault::scoped(plan);

    // Three failed micro-batches trip the breaker open.
    for id in 0..3 {
        let now = core.now_ns();
        core.submit(Request { id, node: id as u32, deadline_ns: now + GENEROUS })
            .unwrap();
        let out = core.step();
        assert_eq!(out.responses, vec![(id, Response::Failed)]);
        assert_pool_intact(&core);
    }
    // Open: admission sheds instantly with the typed overload response.
    let now = core.now_ns();
    assert_eq!(
        core.submit(Request { id: 10, node: 0, deadline_ns: now + GENEROUS }),
        Err(Rejected::Overload)
    );

    // After the cooldown the breaker half-opens and admits probes; two
    // successful single-request probe batches close it.
    vc.advance(small_cfg().breaker_cooldown_ns);
    for id in [11, 12] {
        let now = core.now_ns();
        core.submit(Request { id, node: 1, deadline_ns: now + GENEROUS })
            .unwrap();
        let out = core.step();
        assert_eq!(out.responses.len(), 1);
        assert!(out.responses[0].1.is_done(), "probe must succeed: {out:?}");
    }

    let snap = core.trace().snapshot();
    assert_eq!(snap.metrics.counter(names::counters::SERVE_BREAKER_OPENS), 1);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_SHED_BREAKER), 1);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_OPEN), 1);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_HALF_OPEN), 1);
    assert_eq!(snap.count(names::events::SERVE_BREAKER_CLOSE), 1);
    assert_eq!(snap.metrics.counter(names::counters::SERVE_REQUEST_PANICS), 0);
    assert_pool_intact(&core);
}

/// Runs the same seeded bursty trace through a fresh core and returns the
/// full response sequence plus (degrades, restores).
///
/// The core runs on a *manual* virtual clock and every micro-batch costs
/// exactly 20 µs via an injected GEMM delay, so queue pressure is a pure
/// function of the arrival trace: 1 µs burst gaps pile the queue up
/// faster than batches retire, 20 µs calm gaps drain one-for-one.
fn run_bursty(seed: u64) -> (Vec<(u64, Response)>, u64, u64) {
    let ds = dataset();
    let model = Trainer::new(Arc::clone(&ds), RunConfig::test_tiny()).into_model();
    let trace = Trace::new(Clock::virtual_manual());
    let mut core = ServerCore::new(model, ds, small_cfg(), trace);
    let plan = FaultPlan::new(seed).with_spec(FaultSpec {
        site: sites::SERVE_GEMM.to_string(),
        kind: FaultKind::Delay(Duration::from_micros(20)),
        trigger: Trigger::Always,
        budget: None,
    });
    let _guard = fault::scoped(plan);
    let arrivals = loadgen::bursty_trace(
        seed,
        50_000.0,    // calm: one arrival per ~20 µs — one batch each, queue ~1
        1_000_000.0, // burst: one per ~1 µs — far faster than batches retire
        200_000,     // 200 µs phases
        3_000_000,   // 3 ms: several burst/calm cycles
        dataset().graph.num_nodes(),
        150_000, // 150 µs budget
    );
    let responses = run_trace(&mut core, &arrivals);
    assert_pool_intact(&core);
    let snap = core.trace().snapshot();
    (
        responses,
        snap.metrics.counter(names::counters::SERVE_DEGRADES),
        snap.metrics.counter(names::counters::SERVE_RESTORES),
    )
}

#[test]
fn ladder_degrades_under_bursts_restores_in_calm_and_replays_identically() {
    let _s = serial();
    let (responses, degrades, restores) = run_bursty(41);
    assert!(degrades >= 1, "bursts must push the ladder down (degrades={degrades})");
    assert!(restores >= 1, "calm must restore fidelity (restores={restores})");
    // Some answers were served degraded, some at full quality.
    let levels: Vec<usize> = responses
        .iter()
        .filter_map(|(_, r)| match r {
            Response::Done { fanout_level, .. } => Some(*fanout_level),
            _ => None,
        })
        .collect();
    assert!(levels.iter().any(|&l| l > 0), "expected degraded completions");
    assert!(levels.iter().any(|&l| l == 0), "expected full-quality completions");
    // Overload sheds are typed, never silent: every arrival got a response.
    let (again, d2, r2) = run_bursty(41);
    assert_eq!(responses, again, "same seed must replay the identical sequence");
    assert_eq!((degrades, restores), (d2, r2));
}

#[test]
fn every_arrival_gets_exactly_one_terminal_response() {
    let _s = serial();
    let mut core = core_with(small_cfg());
    let arrivals = loadgen::poisson_trace(
        9,
        400_000.0, // well past the knee: heavy shedding expected
        1_000_000,
        dataset().graph.num_nodes(),
        100_000,
    );
    let n = arrivals.len();
    let responses = run_trace(&mut core, &arrivals);
    assert_eq!(responses.len(), n, "one terminal response per arrival");
    let mut ids: Vec<u64> = responses.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), n, "no duplicate responses");
    // Under this load some requests must have been shed, and the shed +
    // completed + expired accounting covers every admission decision.
    let snap = core.trace().snapshot();
    let admitted = snap.metrics.counter(names::counters::SERVE_ADMITTED);
    let shed = snap.metrics.counter(names::counters::SERVE_SHED_OVERLOAD)
        + snap.metrics.counter(names::counters::SERVE_SHED_INFEASIBLE);
    assert!(shed > 0, "overload trace must shed");
    assert_eq!(admitted + shed, n as u64);
    let completed = snap.metrics.counter(names::counters::SERVE_COMPLETED);
    let expired = snap.metrics.counter(names::counters::SERVE_EXPIRED);
    assert_eq!(completed + expired, admitted, "every admitted request retired");
    assert_pool_intact(&core);
}
