//! Cross-validation between the analytic workload model (which drives the
//! paper-scale event simulator) and the *real* sampler running on synthetic
//! graphs with matching statistics.

use salient_repro::graph::{DatasetConfig, DatasetStats};
use salient_repro::pipeline::shape::{self, ResourceKind, TRANSFER_QUEUE_CAP};
use salient_repro::sampler::FastSampler;
use salient_repro::sim::{expected_batch, CostModel, EpochConfig, OptLevel};

/// Builds DatasetStats describing an actually-materialized synthetic graph.
fn stats_of(ds: &salient_repro::graph::Dataset) -> DatasetStats {
    DatasetStats {
        name: "synthetic",
        num_nodes: ds.graph.num_nodes() as u64,
        num_edges: ds.graph.num_edges() as u64,
        feat_dim: ds.features.dim() as u32,
        train_size: ds.splits.train.len() as u64,
        val_size: ds.splits.val.len() as u64,
        test_size: ds.splits.test.len() as u64,
        avg_degree: ds.graph.avg_degree(),
    }
}

#[test]
fn workload_model_predicts_real_mfg_sizes() {
    // The analytic expansion model must land within a factor of ~2 of the
    // real sampler's MFG sizes across fanouts — that is the accuracy that
    // makes the simulated Tables 1–3 trustworthy.
    let ds = DatasetConfig::products_sim(0.3).build();
    let stats = stats_of(&ds);
    let mut sampler = FastSampler::new(3);
    for fanouts in [vec![15usize, 10, 5], vec![5, 5, 5], vec![20, 20]] {
        let predicted = expected_batch(&stats, &fanouts, 128);
        let mut nodes = 0.0;
        let mut edges = 0.0;
        let chunks: Vec<&[u32]> = ds
            .splits
            .train
            .chunks(128)
            .filter(|c| c.len() == 128)
            .take(8)
            .collect();
        assert!(!chunks.is_empty(), "dataset too small for 128-node batches");
        for batch in &chunks {
            let mfg = sampler.sample(&ds.graph, batch, &fanouts);
            nodes += mfg.num_nodes() as f64;
            edges += mfg.num_edges() as f64;
        }
        nodes /= chunks.len() as f64;
        edges /= chunks.len() as f64;
        let node_ratio = predicted.mfg_nodes / nodes;
        let edge_ratio = predicted.mfg_edges / edges;
        assert!(
            (0.4..2.5).contains(&node_ratio),
            "fanouts {fanouts:?}: model {:.0} vs real {:.0} nodes (ratio {node_ratio:.2})",
            predicted.mfg_nodes,
            nodes
        );
        assert!(
            (0.4..2.5).contains(&edge_ratio),
            "fanouts {fanouts:?}: model {:.0} vs real {:.0} edges (ratio {edge_ratio:.2})",
            predicted.mfg_edges,
            edges
        );
    }
}

#[test]
fn simulator_reproduces_headline_claims() {
    // The three headline numbers of the abstract, all from the simulator:
    // ~3x single-GPU speedup, ~8x further at 16 GPUs, ~2s papers epoch.
    let m = CostModel::paper_hardware();
    let papers = DatasetStats::papers();

    let base = salient_repro::sim::simulate_epoch(
        &EpochConfig::paper_default(papers.clone(), OptLevel::PygBaseline),
        &m,
    )
    .epoch_s;
    let salient = salient_repro::sim::simulate_epoch(
        &EpochConfig::paper_default(papers.clone(), OptLevel::Pipelined),
        &m,
    )
    .epoch_s;
    assert!((2.2..4.5).contains(&(base / salient)), "single-GPU speedup {}", base / salient);

    let multi = salient_repro::sim::simulate_multi_gpu(
        &salient_repro::sim::MultiGpuConfig {
            base: EpochConfig::paper_default(papers, OptLevel::Pipelined),
            ranks: 16,
            gpus_per_machine: 2,
        },
        &m,
    )
    .epoch_s;
    assert!((1.2..3.2).contains(&multi), "papers 16-GPU epoch ≈2.0s, got {multi:.2}");
    assert!(
        (5.0..14.0).contains(&(salient / multi)),
        "16-GPU parallel speedup ≈8x, got {:.2}",
        salient / multi
    );
}

#[test]
fn pipelined_sim_schedule_is_structurally_the_real_stage_graph() {
    // Schedule drift between the simulator and the real executor is caught
    // structurally: both planes are built from `pipeline::shape::train()`,
    // so this test asserts (a) every simulated Pipelined task comes from
    // the shared shape and runs on the shape's resource class, (b) the
    // simulated transfer stage carries the real executor's
    // double-buffering bound, and (c) a real traced run records exactly
    // the spans the shape names.
    use salient_repro::core::{ExecutorKind, RunConfig, Trainer};
    use salient_repro::trace::{Clock, Trace};
    use std::collections::BTreeMap;
    use std::sync::Arc;

    let cfg = EpochConfig::paper_default(DatasetStats::arxiv(), OptLevel::Pipelined);
    let (_report, sim, _ex) =
        salient_repro::sim::simulate_epoch_detailed(&cfg, &CostModel::paper_hardware());
    let train_shape = shape::train();
    let resource_name = |k: ResourceKind| match k {
        ResourceKind::Workers => "cpu-workers",
        ResourceKind::Dma => "dma",
        ResourceKind::Gpu => "gpu",
    };

    let mut per_stage: BTreeMap<&str, usize> = BTreeMap::new();
    let mut task_by_label: BTreeMap<String, usize> = BTreeMap::new();
    for (tid, task) in sim.tasks().iter().enumerate() {
        let prefix = task.label.split('[').next().expect("task label");
        let stage = train_shape
            .iter()
            .find(|s| s.sim_task == prefix)
            .unwrap_or_else(|| panic!("sim task {:?} is not in shape::train()", task.label));
        assert_eq!(
            sim.resources()[task.resource].name,
            resource_name(stage.resource),
            "{:?} must run on its shape's resource class",
            task.label
        );
        *per_stage.entry(stage.sim_task).or_insert(0) += 1;
        task_by_label.insert(task.label.clone(), tid);
    }
    let stages: Vec<&str> = per_stage.keys().copied().collect();
    assert_eq!(stages, ["prep", "train", "transfer"], "stage set drifted");
    let batches = per_stage["train"];
    assert!(batches > TRANSFER_QUEUE_CAP + 1, "need enough batches to exercise the bound");
    assert_eq!(per_stage["prep"], batches);
    assert_eq!(per_stage["transfer"], batches);

    // transfer[b] may run at most TRANSFER_QUEUE_CAP + 1 batches ahead of
    // the consumer — the same backpressure the bounded queue imposes on
    // the real executor.
    for b in (TRANSFER_QUEUE_CAP + 1)..batches {
        let tr = task_by_label[&format!("transfer[{b}]")];
        let gate = task_by_label[&format!("train[{}]", b - TRANSFER_QUEUE_CAP - 1)];
        assert!(
            sim.tasks()[tr].deps.contains(&gate),
            "transfer[{b}] is missing its double-buffer gate"
        );
    }

    // Real plane: a traced SALIENT run must record every span the shape
    // names (prep.sample on the workers, stage.transfer and stage.train on
    // the executor), so renaming or dropping a stage on either side fails
    // here rather than silently desynchronizing the planes.
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    let dataset = Arc::new(DatasetConfig::tiny(5).build());
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        epochs: 1,
        num_workers: 2,
        ..RunConfig::test_tiny()
    };
    let mut trainer = Trainer::with_trace(dataset, run, trace.clone());
    trainer.fit();
    let snap = trace.snapshot();
    for stage in &train_shape {
        assert!(
            snap.spans(stage.span).next().is_some(),
            "real trace is missing span {:?} required by shape::train()",
            stage.span
        );
    }
}

#[test]
fn real_sampler_speedup_matches_calibration_direction() {
    // The calibrated model says SALIENT samples 2.5x faster than PyG; the
    // real Rust implementations must agree at least directionally (>1.2x).
    use salient_repro::sampler::PygSampler;
    use std::time::Instant;
    let ds = DatasetConfig::products_sim(0.15).build();
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let fanouts = [15usize, 10, 5];
    let reps = 12;

    let mut pyg = PygSampler::new(0);
    let _ = pyg.sample(&ds.graph, &batch, &fanouts);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(pyg.sample(&ds.graph, &batch, &fanouts));
    }
    let pyg_t = t0.elapsed();

    let mut fast = FastSampler::new(0);
    let _ = fast.sample(&ds.graph, &batch, &fanouts);
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(fast.sample(&ds.graph, &batch, &fanouts));
    }
    let fast_t = t1.elapsed();
    let speedup = pyg_t.as_secs_f64() / fast_t.as_secs_f64();
    assert!(
        speedup > 1.1,
        "FastSampler should beat the STL-style baseline, got {speedup:.2}x"
    );
}
