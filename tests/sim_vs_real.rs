//! Cross-validation between the analytic workload model (which drives the
//! paper-scale event simulator) and the *real* sampler running on synthetic
//! graphs with matching statistics.

use salient_repro::graph::{DatasetConfig, DatasetStats};
use salient_repro::sampler::FastSampler;
use salient_repro::sim::{expected_batch, CostModel, EpochConfig, OptLevel};

/// Builds DatasetStats describing an actually-materialized synthetic graph.
fn stats_of(ds: &salient_repro::graph::Dataset) -> DatasetStats {
    DatasetStats {
        name: "synthetic",
        num_nodes: ds.graph.num_nodes() as u64,
        num_edges: ds.graph.num_edges() as u64,
        feat_dim: ds.features.dim() as u32,
        train_size: ds.splits.train.len() as u64,
        val_size: ds.splits.val.len() as u64,
        test_size: ds.splits.test.len() as u64,
        avg_degree: ds.graph.avg_degree(),
    }
}

#[test]
fn workload_model_predicts_real_mfg_sizes() {
    // The analytic expansion model must land within a factor of ~2 of the
    // real sampler's MFG sizes across fanouts — that is the accuracy that
    // makes the simulated Tables 1–3 trustworthy.
    let ds = DatasetConfig::products_sim(0.3).build();
    let stats = stats_of(&ds);
    let mut sampler = FastSampler::new(3);
    for fanouts in [vec![15usize, 10, 5], vec![5, 5, 5], vec![20, 20]] {
        let predicted = expected_batch(&stats, &fanouts, 128);
        let mut nodes = 0.0;
        let mut edges = 0.0;
        let chunks: Vec<&[u32]> = ds
            .splits
            .train
            .chunks(128)
            .filter(|c| c.len() == 128)
            .take(8)
            .collect();
        assert!(!chunks.is_empty(), "dataset too small for 128-node batches");
        for batch in &chunks {
            let mfg = sampler.sample(&ds.graph, batch, &fanouts);
            nodes += mfg.num_nodes() as f64;
            edges += mfg.num_edges() as f64;
        }
        nodes /= chunks.len() as f64;
        edges /= chunks.len() as f64;
        let node_ratio = predicted.mfg_nodes / nodes;
        let edge_ratio = predicted.mfg_edges / edges;
        assert!(
            (0.4..2.5).contains(&node_ratio),
            "fanouts {fanouts:?}: model {:.0} vs real {:.0} nodes (ratio {node_ratio:.2})",
            predicted.mfg_nodes,
            nodes
        );
        assert!(
            (0.4..2.5).contains(&edge_ratio),
            "fanouts {fanouts:?}: model {:.0} vs real {:.0} edges (ratio {edge_ratio:.2})",
            predicted.mfg_edges,
            edges
        );
    }
}

#[test]
fn simulator_reproduces_headline_claims() {
    // The three headline numbers of the abstract, all from the simulator:
    // ~3x single-GPU speedup, ~8x further at 16 GPUs, ~2s papers epoch.
    let m = CostModel::paper_hardware();
    let papers = DatasetStats::papers();

    let base = salient_repro::sim::simulate_epoch(
        &EpochConfig::paper_default(papers.clone(), OptLevel::PygBaseline),
        &m,
    )
    .epoch_s;
    let salient = salient_repro::sim::simulate_epoch(
        &EpochConfig::paper_default(papers.clone(), OptLevel::Pipelined),
        &m,
    )
    .epoch_s;
    assert!((2.2..4.5).contains(&(base / salient)), "single-GPU speedup {}", base / salient);

    let multi = salient_repro::sim::simulate_multi_gpu(
        &salient_repro::sim::MultiGpuConfig {
            base: EpochConfig::paper_default(papers, OptLevel::Pipelined),
            ranks: 16,
            gpus_per_machine: 2,
        },
        &m,
    )
    .epoch_s;
    assert!((1.2..3.2).contains(&multi), "papers 16-GPU epoch ≈2.0s, got {multi:.2}");
    assert!(
        (5.0..14.0).contains(&(salient / multi)),
        "16-GPU parallel speedup ≈8x, got {:.2}",
        salient / multi
    );
}

#[test]
fn real_sampler_speedup_matches_calibration_direction() {
    // The calibrated model says SALIENT samples 2.5x faster than PyG; the
    // real Rust implementations must agree at least directionally (>1.2x).
    use salient_repro::sampler::PygSampler;
    use std::time::Instant;
    let ds = DatasetConfig::products_sim(0.15).build();
    let batch: Vec<u32> = ds.splits.train.iter().copied().take(256).collect();
    let fanouts = [15usize, 10, 5];
    let reps = 12;

    let mut pyg = PygSampler::new(0);
    let _ = pyg.sample(&ds.graph, &batch, &fanouts);
    let t0 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(pyg.sample(&ds.graph, &batch, &fanouts));
    }
    let pyg_t = t0.elapsed();

    let mut fast = FastSampler::new(0);
    let _ = fast.sample(&ds.graph, &batch, &fanouts);
    let t1 = Instant::now();
    for _ in 0..reps {
        std::hint::black_box(fast.sample(&ds.graph, &batch, &fanouts));
    }
    let fast_t = t1.elapsed();
    let speedup = pyg_t.as_secs_f64() / fast_t.as_secs_f64();
    assert!(
        speedup > 1.1,
        "FastSampler should beat the STL-style baseline, got {speedup:.2}x"
    );
}
