//! Overhead guard: with tracing disabled, the per-batch hot-loop
//! instrumentation (span guards, pre-resolved counters and histograms,
//! point events) must perform **zero heap allocations**. A counting global
//! allocator makes the assertion exact — this is its own test binary so the
//! allocator hook cannot perturb any other suite.

use salient_repro::trace::names::{counters, events, hists, spans};
use salient_repro::trace::Trace;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Forwards to the system allocator, counting every allocation.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the added relaxed counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        // relaxed: a monotone event count; no ordering with the allocation
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: `layout` is forwarded unchanged from our caller, who
        // guarantees it is valid per the `GlobalAlloc` contract.
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` come from a matching `alloc` via `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    // relaxed: reads a monotone counter between single-threaded phases
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn disabled_tracing_batch_loop_allocates_nothing() {
    let trace = Trace::disabled();
    assert!(!trace.is_enabled());

    // Pre-resolved instruments, exactly as the batch-prep workers and the
    // DDP communicator hold them.
    let batches = trace.counter(counters::BATCHES);
    let latency = trace.histogram(hists::PREP_BATCH_NS);

    // Warm up once (lazy statics, TLS init) before the measured window.
    for batch in 0..8u64 {
        let _span = trace.span_batch(spans::STAGE_PREP, batch);
        batches.inc();
        latency.observe(1 + batch);
    }

    let before = allocations();
    for batch in 0..10_000u64 {
        let _span = trace.span_batch(spans::STAGE_PREP, batch);
        let _inner = trace.span(spans::PREP_SAMPLE);
        batches.inc();
        latency.observe(1 + batch);
        trace.instant(events::RETRY, batch);
        trace.add(counters::RETRIES, 1);
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "disabled tracing must not allocate on the batch hot loop"
    );

    // The disabled registry also records nothing.
    let snap = trace.snapshot();
    assert!(snap.events.is_empty());
    assert_eq!(snap.metrics.counter(counters::BATCHES), 0);
}

#[test]
fn enabled_tracing_amortizes_event_allocations() {
    // Not part of the zero-alloc guarantee, but pins the design point that
    // enabled-mode recording is buffered: 1000 spans must cost far fewer
    // than one allocation per span once the thread buffer exists.
    let trace = Trace::new(salient_repro::trace::Clock::virtual_with_tick(10));
    for batch in 0..64u64 {
        let _span = trace.span_batch(spans::WARMUP, batch);
    }
    let before = allocations();
    for batch in 0..1_000u64 {
        let _span = trace.span_batch(spans::STAGE_PREP, batch);
    }
    let after = allocations();
    assert!(
        after - before < 100,
        "expected amortized event buffering, got {} allocations",
        after - before
    );
}

#[test]
fn flight_recorder_steady_state_costs_no_extra_allocations() {
    // The always-on flight recorder must be cheap enough to leave attached
    // in production: its per-thread rings are fully preallocated at thread
    // registration, so the steady-state mirror write is an index assignment.
    // Same amortized bound as plain enabled tracing — the recorder adds
    // zero allocations per event once the thread is registered.
    let trace = salient_repro::trace::Trace::with_blackbox(
        salient_repro::trace::Clock::virtual_with_tick(10),
        salient_repro::trace::BlackboxConfig {
            capacity: 4096,
            dir: "target/blackbox-overhead-test".to_string(),
        },
    );
    // Warm up: registers this thread (allocating its ring) and faults in
    // the thread-local buffer before the measured window.
    for batch in 0..64u64 {
        let _span = trace.span_batch(spans::WARMUP, batch);
    }
    let before = allocations();
    for batch in 0..1_000u64 {
        let _span = trace.span_batch(spans::STAGE_PREP, batch);
    }
    let after = allocations();
    assert!(
        after - before < 100,
        "flight recorder must not allocate at steady state, got {} allocations",
        after - before
    );
    // The ring really captured the window (overwrite-oldest, so the most
    // recent events are present).
    let bb = trace.blackbox().expect("recorder attached");
    let recent = bb.recent_events();
    assert!(recent.iter().any(|e| e.batch == 999));
}
