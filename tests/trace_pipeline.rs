//! Acceptance tests for the observability subsystem: a deterministic
//! 2-epoch SALIENT-executor run on a `VirtualClock` must yield
//!
//! * a stall-attribution report whose prep/transfer/compute/other shares
//!   sum to 100% and agree with the legacy `StageTimings` view within 1%;
//! * a structurally valid Chrome trace with spans from ≥ 3 threads;
//! * per-batch preparation-latency histograms with usable p50/p95.

use salient_repro::core::{ExecutorKind, RunConfig, Stage, StageTimings, Trainer};
use salient_repro::graph::DatasetConfig;
use salient_repro::trace::export::{chrome_trace, metrics_json, render_report};
use salient_repro::trace::json::{parse, validate_chrome_trace};
use salient_repro::trace::{analyze, names, Clock, Trace};
use std::sync::Arc;

/// Runs two SALIENT epochs under a fresh virtual-clock registry and returns
/// the trace plus the per-epoch legacy stats.
fn traced_run() -> (Trace, Vec<salient_repro::core::EpochStats>) {
    let trace = Trace::new(Clock::virtual_with_tick(1_000));
    let dataset = Arc::new(DatasetConfig::tiny(5).build());
    let run = RunConfig {
        executor: ExecutorKind::Salient,
        epochs: 2,
        num_workers: 2,
        ..RunConfig::test_tiny()
    };
    let mut trainer = Trainer::with_trace(dataset, run, trace.clone());
    let stats = trainer.fit();
    (trace, stats)
}

#[test]
fn stall_attribution_sums_to_100_and_matches_legacy_timings() {
    let (trace, stats) = traced_run();
    assert_eq!(stats.len(), 2);
    let snap = trace.snapshot();

    // Whole-run report: the four shares partition the trainer wall-clock.
    let report = analyze(&snap);
    let pcts = report.stage_pcts();
    let sum: f64 = pcts.iter().sum();
    assert!((sum - 100.0).abs() < 1e-9, "shares must sum to 100: {pcts:?}");

    // Per-epoch agreement: the trace-derived view over each epoch window
    // must match the `StageTimings` the trainer returned (same clock reads,
    // so the ISSUE's 1% tolerance is met with enormous margin).
    let epochs: Vec<(u64, u64)> = snap
        .spans(names::spans::EPOCH)
        .map(|e| (e.start_ns, e.end_ns))
        .collect();
    assert_eq!(epochs.len(), 2);
    for ((e0, e1), legacy) in epochs.into_iter().zip(&stats) {
        let view = StageTimings::from_report(&analyze(&snap.window(e0, e1)));
        for stage in [Stage::Prep, Stage::Transfer, Stage::Train] {
            let (a, b) = (view.pct(stage), legacy.timings.pct(stage));
            assert!((a - b).abs() < 1.0, "{stage:?}: trace {a}% vs legacy {b}%");
        }
        assert!(
            (view.total_s - legacy.timings.total_s).abs() <= 0.01 * legacy.timings.total_s,
            "epoch wall-clock: trace {} vs legacy {}",
            view.total_s,
            legacy.timings.total_s
        );
    }

    // The report renders without panicking and names every stage.
    let text = render_report(&report, &snap);
    for needle in ["prep (blocked)", "transfer", "compute", "other"] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}

#[test]
fn chrome_trace_is_valid_and_spans_at_least_three_threads() {
    let (trace, _) = traced_run();
    let snap = trace.snapshot();
    let out = chrome_trace(&snap);
    let summary = validate_chrome_trace(&out).expect("valid Chrome trace");
    assert!(summary.span_events > 0, "{summary:?}");
    assert!(
        summary.distinct_tids >= 3,
        "trainer + per-epoch workers: {summary:?}"
    );
    assert_eq!(summary.distinct_tids, snap.distinct_tids(), "{summary:?}");
}

#[test]
fn prep_latency_histograms_expose_quantiles() {
    let (trace, stats) = traced_run();
    let snap = trace.snapshot();
    let batches: usize = stats.iter().map(|s| s.batches).sum();
    let h = snap
        .metrics
        .histogram(names::hists::PREP_BATCH_NS)
        .expect("per-batch prep latency histogram");
    assert_eq!(h.count as usize, batches);
    let (p50, p95, p99) = h.percentiles();
    assert!(p50 > 0 && p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");

    // The JSON exporter carries the same quantiles, and the in-repo parser
    // can read them back.
    let doc = parse(&metrics_json(&snap)).expect("valid metrics JSON");
    let hists = doc.get("histograms").expect("histograms object");
    let entry = hists
        .get(names::hists::PREP_BATCH_NS)
        .expect("prep.batch_ns entry");
    assert_eq!(
        entry.get("count").and_then(|v| v.as_num()),
        Some(batches as f64)
    );
    assert_eq!(entry.get("p50").and_then(|v| v.as_num()), Some(p50 as f64));
    assert_eq!(entry.get("p95").and_then(|v| v.as_num()), Some(p95 as f64));
}
